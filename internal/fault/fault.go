// Package fault is a deterministic, seeded fault-injection framework for
// the MESIF engine. A Plan describes which faults to inject (per-site
// probabilities, static link/channel degradation, and recovery pricing); an
// Injector executes the plan against one engine, drawing every decision
// from a single seeded PRNG stream consumed in transaction order — the same
// seed against the same access sequence reproduces a byte-identical fault
// schedule and byte-identical counters.
//
// The injector never breaks correctness itself: it only decides *that* a
// fault strikes (and, for directory corruption, what the poisoned value
// is). The engine owns every recovery obligation — re-issuing dropped
// snoops, broadcasting around poisoned directory entries and repairing
// them, falling back to the in-memory directory on fabricated HitME
// entries — and prices each repair through the injector's penalty
// accumulator, which the engine drains into the transaction's latency.
// Package invariant verifies that machine state stays legal after every
// recovery.
//
// Fault kinds and their real-hardware counterparts:
//
//   - DropSnoopResponse: a snoop response is lost and the home agent (or
//     requesting CA) times out and re-issues, up to RetryBudget consecutive
//     drops. Synthetic hardening — QPI guarantees delivery via link-level
//     retry, but the retry path exists and is priced like one.
//   - StaleDirectory: an in-memory directory entry is arbitrarily
//     corrupted. Generalizes the real silent-eviction staleness of Table V
//     from over-approximation to arbitrary wrongness; the engine detects
//     the poisoned entry, falls back to a broadcast snoop, and rewrites the
//     entry from ground truth.
//   - HitMEFalseHit / HitMEFalseMiss: the directory cache lookup lies. The
//     false-miss direction is real behavior (capacity evictions make every
//     entry eventually unfindable); the false-hit direction is synthetic
//     and exercises the stale-owned-entry fall-through of Section VI-C.
//   - DegradedLink (static): QPI links and/or DRAM channels run slow by a
//     latency factor, via Plan.Configure; feeds machine.Leg, the DRAM
//     access-time model, and the bandwidth model's capacities.
//   - AgentStall: a caching agent transiently stalls a request for
//     StallNs. Models uncore backpressure (credit exhaustion).
//
//hsw:tier engine
package fault

import (
	"fmt"
	"math/rand"

	"haswellep/internal/directory"
	"haswellep/internal/machine"
)

// Kind identifies a fault kind.
type Kind int

// Fault kinds. DegradedLink is static (configured once via Plan.Configure,
// never scheduled), so it does not appear in Counters.Injected or the event
// log; every other kind is a dynamic per-transaction fault.
const (
	DropSnoopResponse Kind = iota
	StaleDirectory
	HitMEFalseHit
	HitMEFalseMiss
	AgentStall
	DegradedLink

	// NumKinds sizes fixed-width per-kind counter arrays.
	NumKinds
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case DropSnoopResponse:
		return "drop-snoop-response"
	case StaleDirectory:
		return "stale-directory"
	case HitMEFalseHit:
		return "hitme-false-hit"
	case HitMEFalseMiss:
		return "hitme-false-miss"
	case AgentStall:
		return "agent-stall"
	case DegradedLink:
		return "degraded-link"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Pricing defaults (nanoseconds) applied by Plan.withDefaults.
const (
	// DefaultSnoopTimeoutNs is the home agent's wait before declaring a
	// snoop response lost and re-issuing. Chosen above the worst healthy
	// cross-socket response round trip so a timeout never fires spuriously.
	DefaultSnoopTimeoutNs = 60.0
	// DefaultRetryBackoffNs is the extra delay added per consecutive
	// re-issue of the same snoop (linear backoff).
	DefaultRetryBackoffNs = 20.0
	// DefaultRetryBudget caps consecutive drops of one snoop round; the
	// re-issue after the last budgeted drop always completes.
	DefaultRetryBudget = 3
	// DefaultStallNs is the service delay of a transient caching-agent
	// stall.
	DefaultStallNs = 40.0
)

// Plan is a seeded fault schedule: per-site probabilities for the dynamic
// fault kinds, static degradation factors, and the pricing knobs of the
// recovery paths. The zero Plan injects nothing and degrades nothing.
type Plan struct {
	// Seed seeds the injector's PRNG stream.
	Seed int64

	// Per-site probabilities in [0,1], rolled once per opportunity:
	// DropSnoopResponse per awaited snoop round (and per re-issue),
	// StaleDirectory per in-memory directory read, HitMEFalseHit per
	// missing directory-cache lookup, HitMEFalseMiss per valid one,
	// AgentStall per transaction reaching a caching agent.
	DropSnoopResponse float64
	StaleDirectory    float64
	HitMEFalseHit     float64
	HitMEFalseMiss    float64
	AgentStall        float64

	// QPILatencyFactor and DRAMLatencyFactor statically degrade the
	// inter-socket links and DRAM channels (0 and 1 both mean healthy);
	// applied by Configure, not scheduled per transaction.
	QPILatencyFactor  float64
	DRAMLatencyFactor float64

	// Recovery pricing; zero fields take the Default* constants.
	SnoopTimeoutNs float64
	RetryBackoffNs float64
	RetryBudget    int
	StallNs        float64

	// MaxEvents caps the injector's event log: once the cap is reached,
	// further scheduled faults are still injected and counted, but their
	// Event entries are dropped (Counters.DroppedEvents counts them). The
	// log therefore holds the *first* MaxEvents events — a truncated
	// schedule prefix, not a sliding window. 0 means DefaultMaxEvents;
	// negative disables the cap (the pre-cap unbounded behavior, for
	// short runs that must observe every event).
	MaxEvents int
}

// DefaultMaxEvents is the event-log cap applied when Plan.MaxEvents is 0.
// At 16 bytes per Event the default bounds the log at ~16 MiB; a chaos run
// injecting at a few percent per transaction reaches it only after tens of
// millions of transactions, which previously leaked memory without bound.
const DefaultMaxEvents = 1 << 20

// Uniform returns a plan injecting every dynamic fault kind at the same
// rate, with healthy links and default pricing.
func Uniform(seed int64, rate float64) Plan {
	return Plan{
		Seed:              seed,
		DropSnoopResponse: rate,
		StaleDirectory:    rate,
		HitMEFalseHit:     rate,
		HitMEFalseMiss:    rate,
		AgentStall:        rate,
	}
}

// Validate checks the plan for consistency.
func (p Plan) Validate() error {
	probs := []struct {
		name string
		v    float64
	}{
		{"DropSnoopResponse", p.DropSnoopResponse},
		{"StaleDirectory", p.StaleDirectory},
		{"HitMEFalseHit", p.HitMEFalseHit},
		{"HitMEFalseMiss", p.HitMEFalseMiss},
		{"AgentStall", p.AgentStall},
	}
	for _, pr := range probs {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("fault: probability %s = %g outside [0,1]", pr.name, pr.v)
		}
	}
	if p.QPILatencyFactor < 0 {
		return fmt.Errorf("fault: QPI latency factor must be non-negative, got %g", p.QPILatencyFactor)
	}
	if p.DRAMLatencyFactor < 0 {
		return fmt.Errorf("fault: DRAM latency factor must be non-negative, got %g", p.DRAMLatencyFactor)
	}
	if p.SnoopTimeoutNs < 0 || p.RetryBackoffNs < 0 || p.StallNs < 0 {
		return fmt.Errorf("fault: pricing knobs must be non-negative")
	}
	if p.RetryBudget < 0 {
		return fmt.Errorf("fault: retry budget must be non-negative, got %d", p.RetryBudget)
	}
	return nil
}

// Active reports whether the plan injects any dynamic fault.
func (p Plan) Active() bool {
	return p.DropSnoopResponse > 0 || p.StaleDirectory > 0 ||
		p.HitMEFalseHit > 0 || p.HitMEFalseMiss > 0 || p.AgentStall > 0
}

// withDefaults fills the zero pricing knobs with the Default* constants.
func (p Plan) withDefaults() Plan {
	if p.SnoopTimeoutNs == 0 {
		p.SnoopTimeoutNs = DefaultSnoopTimeoutNs
	}
	if p.RetryBackoffNs == 0 {
		p.RetryBackoffNs = DefaultRetryBackoffNs
	}
	if p.RetryBudget == 0 {
		p.RetryBudget = DefaultRetryBudget
	}
	if p.StallNs == 0 {
		p.StallNs = DefaultStallNs
	}
	if p.MaxEvents == 0 {
		p.MaxEvents = DefaultMaxEvents
	}
	return p
}

// Configure returns the machine configuration with the plan's static
// degradation applied: DRAM channels and QPI links slowed by the latency
// factors. The latency factors also shrink the corresponding bandwidth
// capacities (dram.Config.Sustained*Bandwidth and
// interconnect.QPIConfig.Degrade divide by the factor — the closed-loop
// simplification that a link stretched by f sustains 1/f the throughput).
func (p Plan) Configure(cfg machine.Config) machine.Config {
	if p.DRAMLatencyFactor > 1 {
		cfg.DRAM.LatencyFactor = p.DRAMLatencyFactor
	}
	if p.QPILatencyFactor > 1 {
		cfg.QPILatencyFactor = p.QPILatencyFactor
		cfg.QPI = cfg.QPI.Degrade(p.QPILatencyFactor)
	}
	return cfg
}

// Counters aggregates what an injector did. All fields are fixed-width so
// two Counters values from the same seed compare byte-identical.
type Counters struct {
	// Injected counts scheduled faults by kind.
	Injected [NumKinds]uint64
	// Retries counts snoop re-issues after dropped responses.
	Retries uint64
	// RetryExhausted counts snoop rounds that consumed the whole retry
	// budget before the final (always delivered) re-issue.
	RetryExhausted uint64
	// DirectoryRepairs counts poisoned in-memory directory entries
	// rewritten from ground truth after a recovery broadcast.
	DirectoryRepairs uint64
	// WastedSnoops counts directed snoops sent on the strength of
	// fabricated HitME entries that found nothing to forward.
	WastedSnoops uint64
	// PenaltyNs is the total recovery latency charged into transactions.
	PenaltyNs float64
	// DroppedEvents counts scheduled faults whose Event entries were
	// discarded because the log had reached Plan.MaxEvents. The faults
	// themselves still struck and are included in Injected.
	DroppedEvents uint64
}

// Event is one scheduled fault: the 1-based transaction sequence number it
// struck in and its kind. The event log is the reproducible fault schedule.
type Event struct {
	Seq  uint64
	Kind Kind
}

// Injector executes a plan against one engine. It is single-threaded, like
// the engine that owns it.
type Injector struct {
	plan     Plan // defaults applied
	rng      *rand.Rand
	seq      uint64
	pending  float64
	counters Counters
	events   []Event
}

// NewInjector builds an injector for the plan.
func NewInjector(p Plan) (*Injector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	pd := p.withDefaults()
	return &Injector{plan: pd, rng: rand.New(rand.NewSource(p.Seed))}, nil
}

// MustInjector is NewInjector but panics on plan errors; for tests and
// static plans.
func MustInjector(p Plan) *Injector {
	i, err := NewInjector(p)
	if err != nil {
		panic(err)
	}
	return i
}

// Plan returns the injector's plan with pricing defaults applied.
func (i *Injector) Plan() Plan { return i.plan }

// Reset returns the injector to its initial state: the PRNG is re-seeded,
// counters, the event log, and any pending penalty are cleared. The next
// access sequence then reproduces the schedule from the top.
func (i *Injector) Reset() {
	i.rng = rand.New(rand.NewSource(i.plan.Seed))
	i.seq = 0
	i.pending = 0
	i.counters = Counters{}
	i.events = nil
}

// BeginTransaction advances the transaction sequence number; the engine
// calls it at the top of every Read, Write, and Flush.
func (i *Injector) BeginTransaction() { i.seq++ }

// Seq returns the current transaction sequence number.
func (i *Injector) Seq() uint64 { return i.seq }

// roll draws one decision for the kind. Probability zero never consumes
// randomness, so a rate-0 plan is stream-identical to no plan at all.
func (i *Injector) roll(k Kind, p float64) bool {
	if p <= 0 {
		return false
	}
	if i.rng.Float64() >= p {
		return false
	}
	i.counters.Injected[k]++
	if i.plan.MaxEvents < 0 || len(i.events) < i.plan.MaxEvents {
		i.events = append(i.events, Event{Seq: i.seq, Kind: k})
	} else {
		i.counters.DroppedEvents++
	}
	return true
}

// SnoopRetryPenalty models dropped snoop responses on one awaited snoop
// round: each consecutive drop (geometric in the plan's probability, capped
// by the retry budget) stalls the waiter for the snoop timeout plus a
// linearly growing backoff before the re-issue. The re-issue after the last
// budgeted drop always completes, so data delivery is never lost — only
// delayed. The penalty lands in the accumulator the engine drains into the
// transaction latency.
func (i *Injector) SnoopRetryPenalty() {
	drops := 0
	for drops < i.plan.RetryBudget && i.roll(DropSnoopResponse, i.plan.DropSnoopResponse) {
		i.AddPenaltyNs(i.plan.SnoopTimeoutNs + float64(drops)*i.plan.RetryBackoffNs)
		drops++
	}
	if drops == 0 {
		return
	}
	i.counters.Retries += uint64(drops)
	if drops == i.plan.RetryBudget {
		i.counters.RetryExhausted++
	}
}

// CorruptDirectory decides whether the in-memory directory entry just read
// is poisoned, and if so returns the corrupted state (always different from
// the current one). The engine writes the corruption into the directory,
// recovers by broadcast, and repairs the entry — booked via
// NoteDirectoryRepair.
func (i *Injector) CorruptDirectory(cur directory.MemState) (directory.MemState, bool) {
	if !i.roll(StaleDirectory, i.plan.StaleDirectory) {
		return cur, false
	}
	states := [3]directory.MemState{directory.RemoteInvalid, directory.SharedRemote, directory.SnoopAll}
	others := states[:0]
	for _, s := range states {
		if s != cur {
			others = append(others, s)
		}
	}
	return others[i.rng.Intn(len(others))], true
}

// NoteDirectoryRepair books one poisoned directory entry rewritten from
// ground truth.
func (i *Injector) NoteDirectoryRepair() { i.counters.DirectoryRepairs++ }

// FalseMiss decides whether a valid HitME lookup is reported as a miss.
func (i *Injector) FalseMiss() bool {
	return i.roll(HitMEFalseMiss, i.plan.HitMEFalseMiss)
}

// FalseHitOwner decides whether a missing HitME lookup fabricates an owned
// entry, and if so picks the fabricated owner among the topology's nodes.
func (i *Injector) FalseHitOwner(nodes int) (int, bool) {
	if !i.roll(HitMEFalseHit, i.plan.HitMEFalseHit) {
		return 0, false
	}
	return i.rng.Intn(nodes), true
}

// NoteWastedSnoop books one directed snoop sent for a fabricated HitME
// entry that found nothing.
func (i *Injector) NoteWastedSnoop() { i.counters.WastedSnoops++ }

// Stall decides whether a caching agent transiently stalls the current
// transaction, charging the stall into the penalty accumulator.
func (i *Injector) Stall() {
	if i.roll(AgentStall, i.plan.AgentStall) {
		i.AddPenaltyNs(i.plan.StallNs)
	}
}

// AddPenaltyNs charges recovery latency into the pending accumulator.
func (i *Injector) AddPenaltyNs(ns float64) {
	i.pending += ns
	i.counters.PenaltyNs += ns
}

// DrainPenaltyNs returns and clears the pending penalty; the engine calls
// it exactly once per transaction when folding recovery cost into the
// access latency.
func (i *Injector) DrainPenaltyNs() float64 {
	v := i.pending
	i.pending = 0
	return v
}

// PendingPenaltyNs returns the undrained penalty. After a completed
// transaction it must be zero — package invariant checks this to prove
// every repair was priced into a returned latency.
func (i *Injector) PendingPenaltyNs() float64 { return i.pending }

// Counters returns a copy of the accumulated counters.
func (i *Injector) Counters() Counters { return i.counters }

// Events returns a copy of the fault schedule executed so far: the first
// Plan.MaxEvents scheduled faults in injection order. When the cap was hit,
// the copy is the schedule's prefix — Counters().DroppedEvents tells how
// many later events are missing (the fault *counters* are never capped).
func (i *Injector) Events() []Event {
	out := make([]Event, len(i.events))
	copy(out, i.events)
	return out
}
