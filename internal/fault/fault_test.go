package fault

import (
	"reflect"
	"testing"

	"haswellep/internal/directory"
	"haswellep/internal/machine"
)

func TestPlanValidate(t *testing.T) {
	good := []Plan{
		{},
		Uniform(1, 0.5),
		{DropSnoopResponse: 1, QPILatencyFactor: 2, DRAMLatencyFactor: 1.5},
		{SnoopTimeoutNs: 10, RetryBackoffNs: 5, RetryBudget: 2, StallNs: 1},
	}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", p, err)
		}
	}
	bad := []Plan{
		{DropSnoopResponse: -0.1},
		{StaleDirectory: 1.5},
		{HitMEFalseHit: 2},
		{HitMEFalseMiss: -1},
		{AgentStall: 1.01},
		{QPILatencyFactor: -1},
		{DRAMLatencyFactor: -0.5},
		{SnoopTimeoutNs: -1},
		{RetryBudget: -1},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", p)
		}
	}
}

func TestUniform(t *testing.T) {
	p := Uniform(42, 0.25)
	if p.Seed != 42 {
		t.Errorf("seed = %d, want 42", p.Seed)
	}
	for name, v := range map[string]float64{
		"DropSnoopResponse": p.DropSnoopResponse,
		"StaleDirectory":    p.StaleDirectory,
		"HitMEFalseHit":     p.HitMEFalseHit,
		"HitMEFalseMiss":    p.HitMEFalseMiss,
		"AgentStall":        p.AgentStall,
	} {
		if v != 0.25 {
			t.Errorf("%s = %v, want 0.25", name, v)
		}
	}
	if p.QPILatencyFactor != 0 || p.DRAMLatencyFactor != 0 {
		t.Errorf("Uniform must leave links healthy, got qpi=%v dram=%v",
			p.QPILatencyFactor, p.DRAMLatencyFactor)
	}
	if !p.Active() {
		t.Error("Uniform(42, 0.25).Active() = false")
	}
	if (Plan{}).Active() {
		t.Error("zero plan reports Active")
	}
}

func TestConfigureDegradesMachine(t *testing.T) {
	base := machine.TestSystem(machine.COD)
	cfg := Plan{QPILatencyFactor: 2, DRAMLatencyFactor: 1.5}.Configure(base)
	if cfg.QPILatencyFactor != 2 {
		t.Errorf("QPILatencyFactor = %v, want 2", cfg.QPILatencyFactor)
	}
	if cfg.DRAM.LatencyFactor != 1.5 {
		t.Errorf("DRAM.LatencyFactor = %v, want 1.5", cfg.DRAM.LatencyFactor)
	}
	if got, want := cfg.QPI.GTs, base.QPI.GTs/2; got != want {
		t.Errorf("degraded QPI GT/s = %v, want %v", got, want)
	}
	// Healthy factors (0 or 1) leave the configuration untouched.
	for _, f := range []float64{0, 1} {
		cfg := Plan{QPILatencyFactor: f, DRAMLatencyFactor: f}.Configure(base)
		if !reflect.DeepEqual(cfg, base) {
			t.Errorf("factor %v changed the config", f)
		}
	}
}

func TestInjectorDeterminism(t *testing.T) {
	run := func() (Counters, []Event) {
		i := MustInjector(Uniform(7, 0.5))
		for tx := 0; tx < 200; tx++ {
			i.BeginTransaction()
			i.Stall()
			i.SnoopRetryPenalty()
			i.CorruptDirectory(directory.RemoteInvalid)
			i.FalseMiss()
			i.FalseHitOwner(4)
			i.DrainPenaltyNs()
		}
		return i.Counters(), i.Events()
	}
	c1, e1 := run()
	c2, e2 := run()
	if c1 != c2 {
		t.Errorf("counters differ across identical runs:\n%+v\n%+v", c1, c2)
	}
	if !reflect.DeepEqual(e1, e2) {
		t.Errorf("event logs differ across identical runs")
	}
	if len(e1) == 0 {
		t.Fatal("no events at rate 0.5 over 200 transactions")
	}
	for _, k := range []Kind{DropSnoopResponse, StaleDirectory, HitMEFalseHit, HitMEFalseMiss, AgentStall} {
		if c1.Injected[k] == 0 {
			t.Errorf("kind %v never injected at rate 0.5 over 200 transactions", k)
		}
	}
}

func TestInjectorReset(t *testing.T) {
	i := MustInjector(Uniform(99, 0.5))
	run := func() (Counters, []Event) {
		for tx := 0; tx < 50; tx++ {
			i.BeginTransaction()
			i.Stall()
			i.SnoopRetryPenalty()
			i.DrainPenaltyNs()
		}
		return i.Counters(), i.Events()
	}
	c1, e1 := run()
	i.Reset()
	if i.Seq() != 0 || i.PendingPenaltyNs() != 0 || (i.Counters() != Counters{}) || len(i.Events()) != 0 {
		t.Fatal("Reset left state behind")
	}
	c2, e2 := run()
	if c1 != c2 || !reflect.DeepEqual(e1, e2) {
		t.Error("post-Reset run does not reproduce the schedule")
	}
}

func TestRateZeroConsumesNoRandomness(t *testing.T) {
	i := MustInjector(Plan{Seed: 3}) // all probabilities zero
	for tx := 0; tx < 100; tx++ {
		i.BeginTransaction()
		i.Stall()
		i.SnoopRetryPenalty()
		if _, hit := i.CorruptDirectory(directory.SnoopAll); hit {
			t.Fatal("rate-0 CorruptDirectory fired")
		}
		if i.FalseMiss() {
			t.Fatal("rate-0 FalseMiss fired")
		}
		if _, hit := i.FalseHitOwner(4); hit {
			t.Fatal("rate-0 FalseHitOwner fired")
		}
	}
	c := i.Counters()
	if c != (Counters{}) {
		t.Errorf("rate-0 plan accumulated counters: %+v", c)
	}
	if i.PendingPenaltyNs() != 0 {
		t.Error("rate-0 plan accumulated penalty")
	}
}

func TestSnoopRetryPenalty(t *testing.T) {
	// Probability 1 always exhausts the budget: drops = RetryBudget, each
	// priced timeout + linear backoff.
	p := Plan{Seed: 1, DropSnoopResponse: 1, SnoopTimeoutNs: 100, RetryBackoffNs: 10, RetryBudget: 3}
	i := MustInjector(p)
	i.BeginTransaction()
	i.SnoopRetryPenalty()
	want := 100.0 + (100.0 + 10.0) + (100.0 + 20.0)
	if got := i.DrainPenaltyNs(); got != want {
		t.Errorf("penalty = %v, want %v", got, want)
	}
	c := i.Counters()
	if c.Retries != 3 || c.RetryExhausted != 1 || c.Injected[DropSnoopResponse] != 3 {
		t.Errorf("counters = %+v, want retries=3 exhausted=1 injected=3", c)
	}
}

func TestCorruptDirectoryAlwaysDiffers(t *testing.T) {
	i := MustInjector(Plan{Seed: 5, StaleDirectory: 1})
	states := []directory.MemState{directory.RemoteInvalid, directory.SharedRemote, directory.SnoopAll}
	for _, cur := range states {
		for n := 0; n < 50; n++ {
			i.BeginTransaction()
			bad, hit := i.CorruptDirectory(cur)
			if !hit {
				t.Fatalf("probability-1 corruption did not fire")
			}
			if bad == cur {
				t.Fatalf("corruption of %v returned the same state", cur)
			}
		}
	}
}

func TestWithDefaults(t *testing.T) {
	i := MustInjector(Plan{Seed: 1})
	p := i.Plan()
	if p.SnoopTimeoutNs != DefaultSnoopTimeoutNs ||
		p.RetryBackoffNs != DefaultRetryBackoffNs ||
		p.RetryBudget != DefaultRetryBudget ||
		p.StallNs != DefaultStallNs {
		t.Errorf("defaults not applied: %+v", p)
	}
	// Explicit pricing survives.
	i = MustInjector(Plan{Seed: 1, SnoopTimeoutNs: 5, RetryBudget: 1})
	if got := i.Plan(); got.SnoopTimeoutNs != 5 || got.RetryBudget != 1 {
		t.Errorf("explicit pricing overridden: %+v", got)
	}
}

func TestMustInjectorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustInjector accepted an invalid plan")
		}
	}()
	MustInjector(Plan{DropSnoopResponse: 2})
}

func TestMaxEventsBoundsLog(t *testing.T) {
	p := Uniform(7, 0.5)
	p.MaxEvents = 3
	i := MustInjector(p)
	for tx := 0; tx < 200; tx++ {
		i.BeginTransaction()
		i.Stall()
		i.SnoopRetryPenalty()
		i.CorruptDirectory(directory.RemoteInvalid)
		i.DrainPenaltyNs()
	}
	c := i.Counters()
	if got := len(i.Events()); got > 3 {
		t.Errorf("event log holds %d entries, cap is 3", got)
	}
	var injected uint64
	for _, n := range c.Injected {
		injected += n
	}
	if injected <= 3 {
		t.Fatalf("only %d injections at rate 0.5 over 200 transactions; test needs the cap exceeded", injected)
	}
	if c.DroppedEvents != injected-3 {
		t.Errorf("DroppedEvents = %d, want %d (injected %d minus cap 3)", c.DroppedEvents, injected-3, injected)
	}
	// The log keeps the schedule's prefix: event seqs must be the earliest.
	evs := i.Events()
	for j := 1; j < len(evs); j++ {
		if evs[j].Seq < evs[j-1].Seq {
			t.Errorf("event log out of order: %v", evs)
		}
	}

	// The cap changes only observability, never behavior: an uncapped run
	// of the same plan injects identically.
	p2 := Uniform(7, 0.5)
	p2.MaxEvents = -1
	i2 := MustInjector(p2)
	for tx := 0; tx < 200; tx++ {
		i2.BeginTransaction()
		i2.Stall()
		i2.SnoopRetryPenalty()
		i2.CorruptDirectory(directory.RemoteInvalid)
		i2.DrainPenaltyNs()
	}
	c2 := i2.Counters()
	if c.Injected != c2.Injected || c.PenaltyNs != c2.PenaltyNs {
		t.Errorf("capped run diverged from uncapped run:\n capped:   %+v\n uncapped: %+v", c, c2)
	}
	if c2.DroppedEvents != 0 {
		t.Errorf("uncapped run dropped %d events", c2.DroppedEvents)
	}
	if uint64(len(i2.Events())) != injected {
		t.Errorf("uncapped log holds %d events, want %d", len(i2.Events()), injected)
	}
}
