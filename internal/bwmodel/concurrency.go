// Package bwmodel converts the protocol engine's access latencies into the
// bandwidths the paper reports.
//
// Single-stream bandwidth on this machine is limited by how many cache-line
// transfers a core keeps in flight (its line-fill buffers plus the L2
// prefetcher's streams) divided by the path latency, and by the datapath
// widths of the inner cache levels (2x32 B L1 loads per cycle, 64 B/cycle
// from L2 — Table I). Aggregated multi-core bandwidth is limited by the
// shared resources: L3 ring throughput, memory channel bandwidth, and the
// QPI links (whose payload capacity source snooping partially spends on
// snoop traffic — the paper's Table VII contrast of 16.8 vs 30.6 GB/s).
//
// The per-path effective concurrency values below are calibration constants
// fitted to the paper's single-threaded measurements (Figure 8/9, Table VI)
// in the default configuration; all cross-configuration predictions then
// follow from the simulated latencies.
//
//hsw:tier engine
package bwmodel

import (
	"haswellep/internal/machine"
	"haswellep/internal/mesif"
)

// Width is the SIMD load width of the measuring loop.
type Width int

// Load widths of the paper's bandwidth benchmarks.
const (
	// SSE128 uses 128-bit loads, which cannot saturate the L1/L2
	// datapaths of Haswell.
	SSE128 Width = iota
	// AVX256 uses 256-bit loads (with the reduced AVX base frequency).
	AVX256
)

// String names the width.
func (w Width) String() string {
	if w == AVX256 {
		return "AVX(256bit)"
	}
	return "SSE(128bit)"
}

// PathClass buckets an access for concurrency lookup.
type PathClass int

// Path classes. Local means "within the requester's NUMA node"; peer
// classes are cross-node.
const (
	ClassL1 PathClass = iota
	ClassL2
	ClassL3
	ClassL3Snoop
	ClassCoreFwdL1
	ClassCoreFwdL2
	ClassPeerL3
	ClassPeerCore
	ClassMemLocal
	ClassMemRemote
	numClasses
)

// classOf maps an engine access to a path class.
func classOf(acc mesif.Access) PathClass {
	switch acc.Source {
	case mesif.SrcL1:
		return ClassL1
	case mesif.SrcL2:
		return ClassL2
	case mesif.SrcL3:
		return ClassL3
	case mesif.SrcL3CoreSnoop:
		return ClassL3Snoop
	case mesif.SrcCoreForward:
		return ClassCoreFwdL1 // refined by caller via level when needed
	case mesif.SrcPeerL3, mesif.SrcPeerL3CoreSnoop:
		return ClassPeerL3
	case mesif.SrcPeerCore:
		return ClassPeerCore
	case mesif.SrcMemoryForward:
		return ClassMemRemote
	default: // SrcMemory
		if acc.RemoteDRAM {
			return ClassMemRemote
		}
		return ClassMemLocal
	}
}

// Concurrency is the effective number of in-flight line transfers a single
// core sustains on each path class. Provenance (default configuration,
// Section VII-A):
//
//	L3 26.2 GB/s at 21.2 ns        -> 8.7 lines
//	L3+snoop 15.0 GB/s at 44.4 ns  -> 10.4
//	core-forward 7.8 / 10.6 GB/s   -> 6.5 / 8.1 (L1/L2 source)
//	remote L3 9.1 GB/s at 86 ns    -> 12.2
//	remote core 6.7 GB/s at 113 ns -> 11.8
//	local memory 10.3 GB/s at 96.4 -> 15.5
//	remote memory 8.0 GB/s at 146  -> 18.2
//
// The inner levels (L1/L2) are datapath- rather than concurrency-limited;
// their table entries are effectively "high enough".
type Concurrency [numClasses]float64

// DefaultConcurrency is the calibrated table for the snooping modes.
var DefaultConcurrency = Concurrency{
	ClassL1:        64,
	ClassL2:        32,
	ClassL3:        8.7,
	ClassL3Snoop:   10.4,
	ClassCoreFwdL1: 6.5,
	ClassCoreFwdL2: 8.1,
	ClassPeerL3:    16.0,
	ClassPeerCore:  11.8,
	ClassMemLocal:  15.5,
	ClassMemRemote: 18.2,
}

// PerCoreCap limits a single core's streaming rate on a path class in GB/s
// regardless of latency: the L3 fill engine sustains ~29 GB/s into one
// core, and the per-core QPI transfer stream saturates near 9.1 GB/s (the
// reason every remote single-stream number of Table VI clusters between
// 8.0 and 9.1 GB/s across states and modes). Zero means uncapped.
var PerCoreCap = [numClasses]float64{
	ClassL3:     29.0,
	ClassPeerL3: 9.2,
}

// CODConcurrency adjusts the table for Cluster-on-Die mode: node-local
// streams ride two dedicated channels and page-hit more (Table VI's >20%
// local gain), while cross-node memory reads pass through the home agent's
// directory pipeline, which sustains fewer outstanding requests per remote
// requester (Table VIII's single-core node-to-node bandwidths).
var CODConcurrency = func() Concurrency {
	c := DefaultConcurrency
	c[ClassMemRemote] = 11.0
	c[ClassMemLocal] = 17.6
	c[ClassPeerL3] = 14.3 // the directory-pipeline path sustains less MLP
	return c
}()

// CODMemCrossSocketConcurrency replaces ClassMemRemote for COD streams
// whose home node is on the other socket (2+ node hops): the longer QPI
// path holds more lines in flight than the on-chip cluster-to-cluster path.
const CODMemCrossSocketConcurrency = 13.0

// ConcurrencyFor returns the calibrated table for a snoop mode.
func ConcurrencyFor(mode machine.SnoopMode) Concurrency {
	if mode == machine.COD {
		return CODConcurrency
	}
	return DefaultConcurrency
}

// WriteConcurrency is the in-flight line count of store streams (RFO +
// writeback), calibrated to the 7.7 GB/s single-core local memory write and
// the 15 GB/s single-core L3 write bandwidth.
type WriteConcurrency struct {
	L3  float64
	Mem float64
}

// DefaultWriteConcurrency is the calibrated store-stream table.
var DefaultWriteConcurrency = WriteConcurrency{L3: 5.0, Mem: 11.6}

// DatapathGBps returns the level-limited bandwidth of L1/L2 hits for a load
// width, in GB/s. AVX loads run at the reduced AVX base frequency
// (2 x 32 B x 2.1 GHz with ~95% issue efficiency = 127 GB/s); SSE loads
// keep the nominal clock but only move 2 x 16 B per cycle.
func DatapathGBps(class PathClass, w Width) float64 {
	switch class {
	case ClassL1:
		if w == AVX256 {
			return 127.2
		}
		return 77.1
	case ClassL2:
		if w == AVX256 {
			return 69.1
		}
		return 48.2
	default:
		return 0 // not datapath-limited
	}
}
