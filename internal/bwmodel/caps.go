package bwmodel

import (
	"haswellep/internal/machine"
)

// SystemCaps collects the shared-resource capacities (GB/s) of a machine
// configuration that bound aggregated bandwidth.
type SystemCaps struct {
	// L3ReadPerSocket bounds the summed L3 read bandwidth of one
	// socket's cores. The ring and slice banks scale almost linearly
	// (Section VII-B: 26.2 -> 278 GB/s over 12 cores in the typical
	// case; uncore frequency boosts occasionally reach 343 GB/s, which
	// we — like the paper — do not treat as sustained).
	L3ReadPerSocket float64
	// L3WritePerSocket bounds the summed L3 write bandwidth (15 -> 161).
	L3WritePerSocket float64
	// L3ReadPerNode / L3WritePerNode bound one COD node's L3 (154 / 94).
	L3ReadPerNode  float64
	L3WritePerNode float64
	// MemReadPerSocket is the sustained DRAM read bandwidth of a socket
	// (four DDR4-2133 channels after command overheads: ~63 GB/s).
	MemReadPerSocket float64
	// MemWriteBusPerSocket is the channel bandwidth available to a
	// streaming-write mixture; every delivered write byte costs two bus
	// bytes (RFO read + writeback), which the flow weights account for.
	MemWriteBusPerSocket float64
	// MemReadPerNode is the sustained read bandwidth of one COD node's
	// two channels.
	MemReadPerNode float64
	// QPIPayloadPerDirection is the cache-line payload capacity of the
	// inter-socket links per direction under home snooping.
	QPIPayloadPerDirection float64
	// SourceSnoopQPIFactor scales the QPI payload capacity in source
	// snoop mode: every L3 miss of every core broadcasts snoops across
	// the same links, and the snoop+response traffic competes with the
	// data returns (Table VII: 16.8 vs 30.6 GB/s remote read).
	SourceSnoopQPIFactor float64
	// InterClusterPerDirection bounds node-to-node transfers that stay
	// on one die (through the ring bridges and the peer node's CA
	// pipeline; Table VIII: 18.8 GB/s).
	InterClusterPerDirection float64
	// CODQPIHopFactor derates the QPI payload per additional node hop in
	// COD mode (Table VIII: 15.6 GB/s at one hop, 14.7 at two/three).
	CODQPIHopFactor float64
	// WriteSaturationSlope models the slight decline of saturated
	// streaming-write bandwidth as more cores contend (26.5 GB/s at five
	// cores, 25.8 at twelve): GB/s lost per additional core past five.
	WriteSaturationSlope float64
}

// CapsFor derives the capacities for a machine configuration. Values that
// follow from modeled hardware (DRAM channels, QPI links) are computed;
// uncore throughput limits are calibration constants from Section VII.
func CapsFor(cfg machine.Config) SystemCaps {
	perIMCRead := cfg.DRAM.SustainedReadBandwidth().GBps()
	perIMCWriteBus := cfg.DRAM.SustainedWriteBandwidth().GBps()
	imcs := 2 // per socket on the modeled dies

	qpi := cfg.QPI.UsableBandwidthPerDirection().GBps()

	return SystemCaps{
		L3ReadPerSocket:          280,
		L3WritePerSocket:         162,
		L3ReadPerNode:            154,
		L3WritePerNode:           94,
		MemReadPerSocket:         float64(imcs) * perIMCRead,
		MemWriteBusPerSocket:     float64(imcs) * perIMCWriteBus,
		MemReadPerNode:           perIMCRead * 1.035, // two-channel streams page-hit slightly more
		QPIPayloadPerDirection:   qpi,
		SourceSnoopQPIFactor:     0.549,
		InterClusterPerDirection: 18.8,
		CODQPIHopFactor:          0.94,
		WriteSaturationSlope:     0.1,
	}
}

// Degrade returns the capacities with degraded inter-socket links and DRAM
// channels: a link or channel whose latency is stretched by the given
// factor sustains proportionally less bandwidth in the closed-loop model
// (factors <= 1 leave the corresponding capacity untouched). CapsFor
// already folds in cfg.DRAM.LatencyFactor; Degrade is for sweeping factors
// against one baseline SystemCaps without rebuilding configurations.
func (c SystemCaps) Degrade(qpiFactor, dramFactor float64) SystemCaps {
	if qpiFactor > 1 {
		c.QPIPayloadPerDirection /= qpiFactor
		c.InterClusterPerDirection /= qpiFactor
	}
	if dramFactor > 1 {
		c.MemReadPerSocket /= dramFactor
		c.MemWriteBusPerSocket /= dramFactor
		c.MemReadPerNode /= dramFactor
	}
	return c
}

// QPIReadCap returns the remote-memory read capacity per direction for the
// given snoop mode.
func (c SystemCaps) QPIReadCap(mode machine.SnoopMode) float64 {
	if mode == machine.SourceSnoop {
		return c.QPIPayloadPerDirection * c.SourceSnoopQPIFactor
	}
	return c.QPIPayloadPerDirection
}

// CODInterNodeCap returns the node-to-node transfer capacity in COD mode
// for the given hop count (1 = on-chip neighbor, 2 = one QPI hop, ...).
func (c SystemCaps) CODInterNodeCap(hops int) float64 {
	if hops <= 1 {
		return c.InterClusterPerDirection
	}
	// Inter-socket COD transfers also pay directory traffic on the links;
	// each additional on-chip hop derates the sustained rate further.
	cap := c.QPIPayloadPerDirection * 0.51
	for h := 2; h < hops; h++ {
		cap *= c.CODQPIHopFactor
	}
	return cap
}

// SaturatedWriteCap returns the delivered write bandwidth limit for n
// concurrently writing cores on one socket: the bus capacity halved by the
// RFO+writeback double traffic, minus the contention decline.
func (c SystemCaps) SaturatedWriteCap(n int) float64 {
	cap := c.MemWriteBusPerSocket / 2
	if n > 5 {
		cap -= c.WriteSaturationSlope * float64(n-5)
	}
	return cap
}
