package bwmodel

// Flow is one bandwidth consumer in an aggregated scenario: a core (or a
// group of cores) with an uncontended demand and a set of shared resources
// it loads, each with a weight of bytes-consumed-per-byte-delivered (e.g. a
// streaming write loads the memory channels with weight 2: RFO read plus
// writeback).
type Flow struct {
	// Demand is the flow's uncontended bandwidth in GB/s (its
	// single-stream measurement).
	Demand float64
	// Uses maps resource index to consumption weight.
	Uses map[int]float64
}

// MaxMin allocates bandwidth to the flows under the resource capacities
// (GB/s) by progressive capping: every saturated resource scales its
// contributors down proportionally until no resource is oversubscribed.
// With identical flows this yields the exact fair share; with heterogeneous
// flows it converges to a proportional-fair allocation.
func MaxMin(flows []Flow, caps []float64) []float64 {
	alloc := make([]float64, len(flows))
	for i, f := range flows {
		alloc[i] = f.Demand
	}
	const (
		maxIter = 100
		epsilon = 1e-9
	)
	for iter := 0; iter < maxIter; iter++ {
		worst := 1.0
		worstRes := -1
		for r, cap := range caps {
			if cap <= 0 {
				continue
			}
			load := 0.0
			for i, f := range flows {
				if w, ok := f.Uses[r]; ok {
					load += alloc[i] * w
				}
			}
			if load > cap+epsilon {
				if ratio := cap / load; ratio < worst {
					worst = ratio
					worstRes = r
				}
			}
		}
		if worstRes < 0 {
			break
		}
		for i, f := range flows {
			if _, ok := f.Uses[worstRes]; ok {
				alloc[i] *= worst
			}
		}
	}
	return alloc
}

// Sum totals an allocation.
func Sum(alloc []float64) float64 {
	s := 0.0
	for _, a := range alloc {
		s += a
	}
	return s
}

// UniformFlows builds n identical flows with the given demand and resource
// usage weights.
func UniformFlows(n int, demand float64, uses map[int]float64) []Flow {
	flows := make([]Flow, n)
	for i := range flows {
		flows[i] = Flow{Demand: demand, Uses: uses}
	}
	return flows
}

// Aggregate is a convenience for the common homogeneous case: n cores with
// identical per-core demand sharing one capacity with the given weight.
// It returns the total delivered bandwidth.
func Aggregate(n int, demand, capacity, weight float64) float64 {
	total := float64(n) * demand
	if total*weight > capacity {
		return capacity / weight
	}
	return total
}
