package bwmodel

// Loaded latency: how the unloaded access latencies of the paper's Section
// VI degrade as the memory system approaches its bandwidth limits. The
// paper measures unloaded latencies and saturated bandwidths; this model
// connects the two endpoints (the classic "loaded latency" curve of tools
// like Intel MLC), so workload studies can price memory accesses under
// contention.

// LoadedLatencyModel parameterizes the queueing behavior.
type LoadedLatencyModel struct {
	// ServiceNs is the additional queueing delay per outstanding request
	// at the bottleneck when utilization reaches 50%.
	ServiceNs float64
	// MaxUtilization clamps the modeled utilization below 1 so the curve
	// stays finite (hardware throttles injection before true saturation).
	MaxUtilization float64
}

// DefaultLoadedLatency matches DDR4 controller behavior: tens of ns of
// queueing at half load, a few hundred ns close to saturation.
var DefaultLoadedLatency = LoadedLatencyModel{
	ServiceNs:      28,
	MaxUtilization: 0.97,
}

// Latency returns the expected access latency (ns) at the given offered
// load against a capacity, starting from the unloaded base latency. The
// M/M/1-style term ServiceNs * rho/(1-rho) reproduces the familiar hockey
// stick: flat until ~60% utilization, then sharply rising.
func (m LoadedLatencyModel) Latency(baseNs, offeredGBps, capacityGBps float64) float64 {
	if capacityGBps <= 0 || offeredGBps <= 0 {
		return baseNs
	}
	rho := offeredGBps / capacityGBps
	if rho > m.MaxUtilization {
		rho = m.MaxUtilization
	}
	return baseNs + m.ServiceNs*rho/(1-rho)
}

// Curve samples the loaded-latency curve at the given offered loads.
func (m LoadedLatencyModel) Curve(baseNs, capacityGBps float64, offered []float64) []float64 {
	out := make([]float64, len(offered))
	for i, o := range offered {
		out[i] = m.Latency(baseNs, o, capacityGBps)
	}
	return out
}
