package bwmodel

import (
	"math"
	"testing"

	"haswellep/internal/addr"
	"haswellep/internal/machine"
	"haswellep/internal/mesif"
	"haswellep/internal/placement"
	"haswellep/internal/units"
)

func TestWidthStrings(t *testing.T) {
	if SSE128.String() != "SSE(128bit)" || AVX256.String() != "AVX(256bit)" {
		t.Error("width names wrong")
	}
}

func TestDatapathGBps(t *testing.T) {
	if DatapathGBps(ClassL1, AVX256) <= DatapathGBps(ClassL1, SSE128) {
		t.Error("AVX must beat SSE on L1")
	}
	if DatapathGBps(ClassL2, AVX256) <= DatapathGBps(ClassL2, SSE128) {
		t.Error("AVX must beat SSE on L2")
	}
	if DatapathGBps(ClassL3, AVX256) != 0 || DatapathGBps(ClassMemLocal, SSE128) != 0 {
		t.Error("outer levels are not datapath limited")
	}
}

func TestConcurrencyFor(t *testing.T) {
	def := ConcurrencyFor(machine.SourceSnoop)
	cod := ConcurrencyFor(machine.COD)
	if def[ClassMemLocal] == cod[ClassMemLocal] {
		t.Error("COD local memory concurrency must differ (two-channel page locality)")
	}
	if def != ConcurrencyFor(machine.HomeSnoop) {
		t.Error("home snoop shares the default table")
	}
	for c := PathClass(0); c < numClasses; c++ {
		if def[c] <= 0 {
			t.Errorf("class %d has nonpositive concurrency", c)
		}
	}
}

func TestMaxMinNoConstraint(t *testing.T) {
	flows := UniformFlows(3, 10, map[int]float64{0: 1})
	alloc := MaxMin(flows, []float64{100})
	if Sum(alloc) != 30 {
		t.Errorf("unconstrained sum = %v", Sum(alloc))
	}
}

func TestMaxMinSingleBottleneck(t *testing.T) {
	flows := UniformFlows(4, 10, map[int]float64{0: 1})
	alloc := MaxMin(flows, []float64{20})
	if math.Abs(Sum(alloc)-20) > 1e-6 {
		t.Errorf("bottlenecked sum = %v", Sum(alloc))
	}
	for _, a := range alloc {
		if math.Abs(a-5) > 1e-6 {
			t.Errorf("unfair share %v", a)
		}
	}
}

func TestMaxMinWeightedUsage(t *testing.T) {
	// A write flow consuming 2 bus bytes per delivered byte.
	flows := UniformFlows(2, 20, map[int]float64{0: 2})
	alloc := MaxMin(flows, []float64{40})
	if math.Abs(Sum(alloc)-20) > 1e-6 {
		t.Errorf("weighted sum = %v, want 20 (40 bus / weight 2)", Sum(alloc))
	}
}

func TestMaxMinMultiResource(t *testing.T) {
	// Flow 0 uses resources 0+1, flow 1 only resource 1.
	flows := []Flow{
		{Demand: 30, Uses: map[int]float64{0: 1, 1: 1}},
		{Demand: 30, Uses: map[int]float64{1: 1}},
	}
	alloc := MaxMin(flows, []float64{10, 40})
	if alloc[0] > 10+1e-6 {
		t.Errorf("flow 0 exceeds its private bottleneck: %v", alloc[0])
	}
	if alloc[0]+alloc[1] > 40+1e-6 {
		t.Errorf("resource 1 oversubscribed: %v", alloc)
	}
}

func TestMaxMinIgnoresZeroCap(t *testing.T) {
	flows := UniformFlows(1, 5, map[int]float64{0: 1})
	alloc := MaxMin(flows, []float64{0})
	if alloc[0] != 5 {
		t.Errorf("zero capacity must mean unconstrained, got %v", alloc[0])
	}
}

func TestAggregate(t *testing.T) {
	if got := Aggregate(4, 10, 100, 1); got != 40 {
		t.Errorf("unconstrained aggregate = %v", got)
	}
	if got := Aggregate(12, 10.3, 63, 1); got != 63 {
		t.Errorf("capped aggregate = %v", got)
	}
	if got := Aggregate(2, 10, 30, 2); got != 15 {
		t.Errorf("weighted aggregate = %v", got)
	}
}

func TestCapsFor(t *testing.T) {
	caps := CapsFor(machine.TestSystem(machine.SourceSnoop))
	if caps.MemReadPerSocket < 61 || caps.MemReadPerSocket > 65 {
		t.Errorf("socket read cap = %v, want ~63", caps.MemReadPerSocket)
	}
	if got := caps.QPIReadCap(machine.SourceSnoop); math.Abs(got-16.8) > 0.3 {
		t.Errorf("source snoop QPI cap = %v, want ~16.8", got)
	}
	if got := caps.QPIReadCap(machine.HomeSnoop); math.Abs(got-30.6) > 0.3 {
		t.Errorf("home snoop QPI cap = %v, want ~30.6", got)
	}
	if got := caps.CODInterNodeCap(1); got != caps.InterClusterPerDirection {
		t.Errorf("on-chip inter-node cap = %v", got)
	}
	if got := caps.CODInterNodeCap(2); math.Abs(got-15.6) > 0.3 {
		t.Errorf("1-QPI-hop cap = %v, want ~15.6", got)
	}
	if got := caps.CODInterNodeCap(3); math.Abs(got-14.7) > 0.3 {
		t.Errorf("multi-hop cap = %v, want ~14.7", got)
	}
}

func TestSaturatedWriteCap(t *testing.T) {
	caps := CapsFor(machine.TestSystem(machine.SourceSnoop))
	five := caps.SaturatedWriteCap(5)
	twelve := caps.SaturatedWriteCap(12)
	if math.Abs(five-26.6) > 0.5 {
		t.Errorf("5-core write cap = %v, want ~26.5", five)
	}
	if twelve >= five {
		t.Error("write cap must decline past five cores")
	}
	if math.Abs(twelve-25.9) > 0.5 {
		t.Errorf("12-core write cap = %v, want ~25.8", twelve)
	}
}

func TestReadStreamL1(t *testing.T) {
	e := mesif.New(machine.MustNew(machine.TestSystem(machine.SourceSnoop)))
	p := placement.New(e)
	r, _ := e.M.AllocOnNode(0, 8*units.KiB)
	p.Exclusive(0, r)
	st := ReadStream(e, 0, r, AVX256, DefaultConcurrency)
	if math.Abs(st.GBps-127.2) > 0.5 {
		t.Errorf("L1 AVX stream = %v, want 127.2", st.GBps)
	}
	if st.ByClass[ClassL1] != st.N {
		t.Errorf("classes = %v", st.ByClass)
	}

	e.M.Reset()
	p.Exclusive(0, r)
	st = ReadStream(e, 0, r, SSE128, DefaultConcurrency)
	if math.Abs(st.GBps-77.1) > 0.5 {
		t.Errorf("L1 SSE stream = %v, want 77.1", st.GBps)
	}
}

func TestReadStreamEmpty(t *testing.T) {
	e := mesif.New(machine.MustNew(machine.TestSystem(machine.SourceSnoop)))
	st := ReadStream(e, 0, addr.Region{}, AVX256, DefaultConcurrency)
	if st.GBps != 0 || st.N != 0 {
		t.Errorf("empty stream = %+v", st)
	}
}

func TestWriteStreamMemory(t *testing.T) {
	e := mesif.New(machine.MustNew(machine.TestSystem(machine.SourceSnoop)))
	r, _ := e.M.AllocOnNode(0, 4*units.MiB)
	st := WriteStream(e, 0, r, DefaultWriteConcurrency)
	// Fresh memory: RFO misses to local DRAM; the paper's 7.7 GB/s.
	if st.GBps < 6.8 || st.GBps > 8.6 {
		t.Errorf("memory write stream = %v, want ~7.7", st.GBps)
	}
}

func TestWriteConcurrencyValues(t *testing.T) {
	if DefaultWriteConcurrency.L3 <= 0 || DefaultWriteConcurrency.Mem <= DefaultWriteConcurrency.L3 {
		t.Error("write concurrency table implausible")
	}
}
