package bwmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLoadedLatencyUnloaded(t *testing.T) {
	m := DefaultLoadedLatency
	if got := m.Latency(96.4, 0, 63); got != 96.4 {
		t.Errorf("zero load latency = %v", got)
	}
	if got := m.Latency(96.4, 10, 0); got != 96.4 {
		t.Errorf("zero capacity must return base, got %v", got)
	}
}

func TestLoadedLatencyMonotone(t *testing.T) {
	m := DefaultLoadedLatency
	f := func(a, b uint8) bool {
		x := float64(a) / 4
		y := float64(b) / 4
		if x > y {
			x, y = y, x
		}
		return m.Latency(96.4, x, 63) <= m.Latency(96.4, y, 63)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLoadedLatencyShape(t *testing.T) {
	m := DefaultLoadedLatency
	base := 96.4
	half := m.Latency(base, 31.5, 63)
	near := m.Latency(base, 62, 63)
	// Half load: roughly base + ServiceNs.
	if math.Abs(half-(base+m.ServiceNs)) > 1 {
		t.Errorf("half-load latency = %v", half)
	}
	// Near saturation: several times the base queueing.
	if near < base+5*m.ServiceNs {
		t.Errorf("near-saturation latency = %v, too flat", near)
	}
	// Clamp keeps it finite past capacity.
	over := m.Latency(base, 100, 63)
	if math.IsInf(over, 1) || over < near {
		t.Errorf("over-capacity latency = %v", over)
	}
}

func TestLoadedLatencyCurve(t *testing.T) {
	m := DefaultLoadedLatency
	offered := []float64{0, 10, 30, 50, 60}
	curve := m.Curve(96.4, 63, offered)
	if len(curve) != len(offered) {
		t.Fatal("curve length mismatch")
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1] {
			t.Fatal("curve not monotone")
		}
	}
}
