package bwmodel

import (
	"sort"

	"haswellep/internal/addr"
	"haswellep/internal/machine"
	"haswellep/internal/mesif"
	"haswellep/internal/topology"
)

// lineBytes is the transfer granularity.
const lineBytes = 64.0

// StreamStat summarizes a bandwidth pass.
type StreamStat struct {
	// GBps is the modeled sustained bandwidth of the stream.
	GBps float64
	// N is the number of lines streamed.
	N int
	// ByClass counts lines per path class.
	ByClass map[PathClass]int
}

// refineClass maps an access to its path class, using the forward level to
// split core forwards into their L1/L2 variants.
func refineClass(acc mesif.Access) PathClass {
	c := classOf(acc)
	if acc.Source == mesif.SrcCoreForward && acc.FwdLevel == 2 {
		return ClassCoreFwdL2
	}
	return c
}

// bucket subdivides ClassMemRemote by socket distance in COD mode (the
// cross-socket directory path sustains different MLP than the on-chip
// cluster-to-cluster path).
type bucket struct {
	class PathClass
	cross bool
}

// streamAccum aggregates per-bucket line counts and latency sums. A real
// streaming loop overlaps the outstanding misses of one path class, so the
// effective per-line time is the class's MEAN latency divided by its
// concurrency — not a per-line maximum — bounded below by the datapath and
// per-core transfer-engine limits.
type streamAccum struct {
	n     map[bucket]int
	latNs map[bucket]float64
}

func newStreamAccum() *streamAccum {
	return &streamAccum{n: make(map[bucket]int), latNs: make(map[bucket]float64)}
}

func (a *streamAccum) add(b bucket, latNs float64) {
	a.n[b]++
	a.latNs[b] += latNs
}

// sortedBuckets returns the populated buckets in a fixed order
// (class-major, on-chip before cross-socket). The stream-time reductions
// below are float sums, and float addition is not associative, so the
// iteration order must be pinned for runs to replay bit-identically.
func (a *streamAccum) sortedBuckets() []bucket {
	bs := make([]bucket, 0, len(a.n))
	//hsw:unordered key collection; order restored by the sort below
	for b := range a.n {
		bs = append(bs, b)
	}
	sort.Slice(bs, func(i, j int) bool {
		if bs[i].class != bs[j].class {
			return bs[i].class < bs[j].class
		}
		return !bs[i].cross && bs[j].cross
	})
	return bs
}

// readTime returns the total stream time in ns under a read concurrency
// table.
func (a *streamAccum) readTime(w Width, conc Concurrency) float64 {
	total := 0.0
	for _, b := range a.sortedBuckets() {
		n := a.n[b]
		mean := a.latNs[b] / float64(n)
		c := conc[b.class]
		if b.class == ClassMemRemote && b.cross {
			c = CODMemCrossSocketConcurrency
		}
		t := mean / c
		if dp := DatapathGBps(b.class, w); dp > 0 {
			if dpT := lineBytes / dp; dpT > t {
				t = dpT
			}
		}
		if cap := PerCoreCap[b.class]; cap > 0 {
			if capT := lineBytes / cap; capT > t {
				t = capT
			}
		}
		total += float64(n) * t
	}
	return total
}

// writeTime returns the total stream time in ns under a write concurrency
// model.
func (a *streamAccum) writeTime(wc WriteConcurrency) float64 {
	total := 0.0
	for _, b := range a.sortedBuckets() {
		n := a.n[b]
		mean := a.latNs[b] / float64(n)
		c := wc.Mem
		switch b.class {
		case ClassL1, ClassL2, ClassL3, ClassL3Snoop:
			c = wc.L3
		}
		total += float64(n) * mean / c
	}
	return total
}

// crossSocket reports whether the line's home is on another socket than the
// core, for COD-mode memory-class bucketing.
func crossSocket(e *mesif.Engine, core topology.CoreID, l addr.LineAddr) bool {
	if e.M.Cfg.Mode != machine.COD {
		return false
	}
	rn := e.M.Topo.NodeOfCore(core)
	return e.M.Topo.SocketOfNode(rn) != e.M.Topo.SocketOfNode(e.M.MustHomeNode(l))
}

// ReadStream models a single-core streaming-read pass over the region: the
// engine executes every line access (mutating all protocol state exactly as
// the latency benchmark does), and each path class contributes its mean
// latency divided by the class's effective concurrency, bounded by the
// datapath widths and per-core transfer-engine caps.
func ReadStream(e *mesif.Engine, core topology.CoreID, r addr.Region, w Width, conc Concurrency) StreamStat {
	e.WorkingSet = r.Size
	stat := StreamStat{ByClass: make(map[PathClass]int)}
	acc := newStreamAccum()
	lines := r.Lines()
	for _, l := range lines {
		a := e.Read(core, l)
		class := refineClass(a)
		stat.ByClass[class]++
		b := bucket{class: class}
		if class == ClassMemRemote {
			b.cross = crossSocket(e, core, l)
		}
		acc.add(b, a.Latency.Nanoseconds())
	}
	stat.N = len(lines)
	if totalNs := acc.readTime(w, conc); totalNs > 0 {
		stat.GBps = float64(stat.N) * lineBytes / totalNs
	}
	return stat
}

// WriteStream models a single-core streaming-write pass: each line costs a
// read-for-ownership (whose latency the engine computes) plus an eventual
// writeback; the store stream keeps WriteConcurrency lines in flight.
func WriteStream(e *mesif.Engine, core topology.CoreID, r addr.Region, wc WriteConcurrency) StreamStat {
	e.WorkingSet = r.Size
	stat := StreamStat{ByClass: make(map[PathClass]int)}
	acc := newStreamAccum()
	lines := r.Lines()
	for _, l := range lines {
		a := e.Write(core, l)
		class := refineClass(a)
		stat.ByClass[class]++
		acc.add(bucket{class: class}, a.Latency.Nanoseconds())
	}
	stat.N = len(lines)
	if totalNs := acc.writeTime(wc); totalNs > 0 {
		stat.GBps = float64(stat.N) * lineBytes / totalNs
	}
	return stat
}
