package trace

import (
	"path/filepath"
	"reflect"
	"testing"

	"haswellep/internal/addr"
	"haswellep/internal/machine"
	"haswellep/internal/mesif"
	"haswellep/internal/topology"
)

func newRig(t *testing.T, capacity int) (*machine.Machine, *mesif.Engine, *Recorder) {
	t.Helper()
	m := machine.MustNew(machine.TestSystem(machine.SourceSnoop))
	e := mesif.New(m)
	tr := Attach(e, Options{Capacity: capacity})
	t.Cleanup(tr.Detach)
	return m, e, tr
}

// TestRecorderOrder: events come out oldest-first with kinds matching what
// the run actually did, and the digest counts every transaction.
func TestRecorderOrder(t *testing.T) {
	m, e, tr := newRig(t, 0)
	r := m.MustAlloc(0, 2*addr.LineSize)
	lines := r.Lines()
	e.Read(0, lines[0])
	e.Write(1, lines[1])
	e.Flush(0, lines[0])
	m.Reset()

	evs := tr.Events()
	wantKinds := []EventKind{EvAlloc, EvOp, EvOp, EvOp, EvReset}
	if len(evs) != len(wantKinds) {
		t.Fatalf("got %d events, want %d: %v", len(evs), len(wantKinds), evs)
	}
	for i, k := range wantKinds {
		if evs[i].Kind != k {
			t.Errorf("event %d: kind %v, want %v", i, evs[i].Kind, k)
		}
	}
	d := tr.Digest()
	if d.Ops != 3 || d.Reads != 1 || d.Writes != 1 || d.Flushes != 1 {
		t.Errorf("digest miscounts: %+v", d)
	}
	if d.LatencyPs <= 0 {
		t.Errorf("digest latency %d ps, want > 0", d.LatencyPs)
	}
}

// TestRingOverflow: a tiny ring keeps only the newest events, counts the
// drops, and marks the resulting bundle truncated.
func TestRingOverflow(t *testing.T) {
	m, e, tr := newRig(t, 4)
	l := m.MustAlloc(0, addr.LineSize).Base.Line()
	for i := 0; i < 10; i++ {
		e.Read(0, l)
	}
	if got := tr.Total(); got != 11 { // 1 alloc + 10 ops
		t.Errorf("Total() = %d, want 11", got)
	}
	if got := tr.Overflowed(); got != 7 {
		t.Errorf("Overflowed() = %d, want 7", got)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.Kind != EvOp {
			t.Errorf("event %d: kind %v, want op (alloc should have been dropped)", i, ev.Kind)
		}
	}
	b := tr.Bundle(nil)
	if !b.Truncated() {
		t.Errorf("bundle of an overflowed ring not marked truncated")
	}
	// The digest still covers the whole run, not just the surviving window.
	if d := tr.Digest(); d.Ops != 10 {
		t.Errorf("digest ops %d, want 10", d.Ops)
	}
	if err := tr.SetBaseline(); err == nil {
		t.Errorf("SetBaseline on an overflowed ring succeeded")
	}
}

// TestBaseline: SetBaseline pins the preamble, ResetToBaseline discards
// everything after it and restarts the digest.
func TestBaseline(t *testing.T) {
	m, e, tr := newRig(t, 0)
	l := m.MustAlloc(0, addr.LineSize).Base.Line()
	if err := tr.SetBaseline(); err != nil {
		t.Fatalf("SetBaseline: %v", err)
	}
	e.Read(0, l)
	e.Write(0, l)
	if n := len(tr.Events()); n != 3 {
		t.Fatalf("got %d events, want 3", n)
	}
	tr.ResetToBaseline()
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Kind != EvAlloc {
		t.Fatalf("after reset: %v, want just the alloc", evs)
	}
	if d := tr.Digest(); d.Ops != 0 {
		t.Errorf("digest not restarted: %+v", d)
	}
	e.Read(0, l)
	if n := len(tr.Events()); n != 2 {
		t.Errorf("recording after reset: %d events, want 2", n)
	}
}

// TestHookChaining: Attach preserves previously installed hooks, and Detach
// (LIFO) restores them.
func TestHookChaining(t *testing.T) {
	m := machine.MustNew(machine.TestSystem(machine.SourceSnoop))
	e := mesif.New(m)
	var accesses, allocs, resets int
	e.AfterAccess = func(mesif.Op, topology.CoreID, addr.LineAddr, mesif.Access) { accesses++ }
	m.OnAlloc = func(topology.NodeID, int64, addr.Region) { allocs++ }
	m.OnReset = func() { resets++ }

	tr := Attach(e, Options{})
	l := m.MustAlloc(0, addr.LineSize).Base.Line()
	e.Read(0, l)
	m.Reset()
	if accesses != 1 || allocs != 1 || resets != 1 {
		t.Errorf("chained hooks fired (%d, %d, %d), want (1, 1, 1)", accesses, allocs, resets)
	}
	if n := len(tr.Events()); n != 3 {
		t.Errorf("recorder saw %d events, want 3", n)
	}

	tr.Detach()
	tr.Detach() // idempotent
	e.Read(0, l)
	m.Reset()
	if accesses != 2 || resets != 2 {
		t.Errorf("original hooks not restored: accesses=%d resets=%d", accesses, resets)
	}
	if n := len(tr.Events()); n != 3 {
		t.Errorf("detached recorder still recording: %d events", n)
	}
}

// TestBundleRoundTrip: WriteFile/ReadFile preserve every field.
func TestBundleRoundTrip(t *testing.T) {
	m, e, tr := newRig(t, 0)
	l := m.MustAlloc(0, addr.LineSize).Base.Line()
	e.Read(0, l)
	e.Write(1, l)
	f := &Finding{Kind: 2, KindName: "directory", Class: 1, ClassName: "violation",
		Line: l, Detail: "synthetic", Op: int(mesif.OpRead), Core: 0}
	b := tr.Bundle(f)

	path := filepath.Join(t.TempDir(), "bundle.json")
	if err := WriteFile(path, b); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !reflect.DeepEqual(got, b) {
		t.Errorf("round trip changed the bundle:\n wrote: %+v\n read:  %+v", b, got)
	}
	if got.Digest != b.Digest {
		t.Errorf("digest changed: %+v vs %+v", b.Digest, got.Digest)
	}
}

// TestVersionRejected: a bundle from a different format version fails
// validation instead of replaying garbage.
func TestVersionRejected(t *testing.T) {
	_, _, tr := newRig(t, 0)
	b := tr.Bundle(nil)
	b.Version = Version + 1
	path := filepath.Join(t.TempDir(), "future.json")
	if err := WriteFile(path, b); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Errorf("version %d bundle accepted by a version %d reader", b.Version, Version)
	}
}

// TestApplyRejectsNonCorruptions: Apply is for corruption events only.
func TestApplyRejectsNonCorruptions(t *testing.T) {
	m := machine.MustNew(machine.TestSystem(machine.SourceSnoop))
	for _, k := range []EventKind{EvOp, EvAlloc, EvReset} {
		if err := Apply(m, Event{Kind: k}); err == nil {
			t.Errorf("Apply accepted kind %v", k)
		}
	}
}

// TestFindingMatches: identity is (kind, class, line); detail and op are
// diagnostic only.
func TestFindingMatches(t *testing.T) {
	a := Finding{Kind: 1, Class: 2, Line: 0x40, Detail: "x", Op: 0}
	b := Finding{Kind: 1, Class: 2, Line: 0x40, Detail: "y", Op: 1, Core: 9}
	if !a.Matches(b) {
		t.Errorf("detail/op differences broke the match")
	}
	for _, g := range []Finding{
		{Kind: 0, Class: 2, Line: 0x40},
		{Kind: 1, Class: 0, Line: 0x40},
		{Kind: 1, Class: 2, Line: 0x80},
	} {
		if a.Matches(g) {
			t.Errorf("%+v matched %+v", a, g)
		}
	}
}
