package trace

import (
	"encoding/json"
	"fmt"
	"os"

	"haswellep/internal/coherence"
	"haswellep/internal/fault"
	"haswellep/internal/machine"
	"haswellep/internal/topology"
)

// Version is the bundle format version this build reads and writes.
// ReadFile rejects other versions instead of guessing.
const Version = 1

// Spec is the machine portion of a bundle: the knobs that select among the
// configurations this repo's harnesses build. DRAM, QPI, and latency-model
// parameters are NOT serialized — the spec always rebuilds from
// machine.TestSystem (the paper's Table II machine) and then applies the
// bundle's fault plan via Plan.Configure, which is how every recorded
// harness (experiments.Env, the chaos sweep, the sweep/fuzz rigs) builds
// its machine. A harness with hand-tuned DRAM/QPI parameters would need a
// format version bump to round-trip.
type Spec struct {
	Sockets          int   `json:"sockets"`
	Die              int   `json:"die"`
	Mode             int   `json:"mode"`
	ForceDirectory   bool  `json:"force_directory,omitempty"`
	DisableDirectory bool  `json:"disable_directory,omitempty"`
	DisableHitME     bool  `json:"disable_hitme,omitempty"`
	HitMEBytes       int64 `json:"hitme_bytes,omitempty"`
	// Protocol is the coherence protocol id; MESIF (the default) is
	// normalized to "" so pre-protocol bundles compare and replay
	// unchanged.
	Protocol string `json:"protocol,omitempty"`
}

// SpecOf captures a machine configuration's identifying knobs.
func SpecOf(cfg machine.Config) Spec {
	proto := string(coherence.Normalize(cfg.Protocol))
	if proto == string(coherence.MESIF) {
		proto = ""
	}
	return Spec{
		Sockets:          cfg.Sockets,
		Die:              int(cfg.Die),
		Mode:             int(cfg.Mode),
		ForceDirectory:   cfg.ForceDirectory,
		DisableDirectory: cfg.DisableDirectory,
		DisableHitME:     cfg.DisableHitME,
		HitMEBytes:       cfg.HitMEBytes,
		Protocol:         proto,
	}
}

// Config rebuilds the machine configuration the spec describes (fault-plan
// degradation not yet applied — replay applies Plan.Configure on top).
func (s Spec) Config() machine.Config {
	cfg := machine.TestSystem(machine.SnoopMode(s.Mode))
	cfg.Sockets = s.Sockets
	cfg.Die = topology.DieVariant(s.Die)
	cfg.ForceDirectory = s.ForceDirectory
	cfg.DisableDirectory = s.DisableDirectory
	cfg.DisableHitME = s.DisableHitME
	cfg.HitMEBytes = s.HitMEBytes
	cfg.Protocol = coherence.ID(s.Protocol)
	return cfg
}

// Bundle is one self-contained failing run: everything needed to rebuild
// the machine, re-execute the recorded events, and check that the same
// finding reappears. Bundles serialize as JSON (WriteFile/ReadFile).
type Bundle struct {
	Version int  `json:"version"`
	Spec    Spec `json:"machine"`
	// Plan is the fault plan of the recorded engine's injector (pricing
	// defaults applied), nil when the engine ran without one.
	Plan *fault.Plan `json:"fault_plan,omitempty"`
	// Events is the recorded stream, oldest first.
	Events []Event `json:"events"`
	// Total counts events appended since the recorder's baseline;
	// Overflow counts the ones the bounded ring dropped. When Overflow
	// is nonzero the events no longer start at a reconstructible
	// machine state and the bundle documents the failure but cannot be
	// replayed.
	Total    uint64 `json:"total_events"`
	Overflow uint64 `json:"overflow_events,omitempty"`
	// Digest summarizes the recorded run; a replay must reproduce it
	// byte-identically.
	Digest Digest `json:"digest"`
	// Finding is the invariant violation that triggered the capture,
	// nil for bundles recorded without one.
	Finding *Finding `json:"finding,omitempty"`
	// FlowSolves logs the multi-flow bandwidth-solver invocations of the
	// recorded run; replay re-runs each and demands bit-identical
	// allocations. FlowSolveOverflow counts invocations dropped past the
	// recorder's cap — nonzero means the log is incomplete (the replayable
	// prefix is still verified).
	FlowSolves        []FlowSolve `json:"flow_solves,omitempty"`
	FlowSolveOverflow uint64      `json:"flow_solve_overflow,omitempty"`
}

// Bundle freezes the recorder's current state into a bundle. The finding
// may be nil (a trace captured for its own sake).
func (r *Recorder) Bundle(f *Finding) *Bundle {
	var plan *fault.Plan
	if r.e.Faults != nil {
		p := r.e.Faults.Plan()
		plan = &p
	}
	return &Bundle{
		Version:           Version,
		Spec:              SpecOf(r.m.Cfg),
		Plan:              plan,
		Events:            r.Events(),
		Total:             r.total,
		Overflow:          r.overflow,
		Digest:            r.Digest(),
		Finding:           f,
		FlowSolves:        r.flowSolves,
		FlowSolveOverflow: r.flowSolveOverflow,
	}
}

// Truncated reports whether the ring dropped events, making the bundle
// non-replayable.
func (b *Bundle) Truncated() bool { return b.Overflow > 0 }

// Ops counts the engine transactions (EvOp events) in the bundle.
func (b *Bundle) Ops() int {
	n := 0
	for _, ev := range b.Events {
		if ev.Kind == EvOp {
			n++
		}
	}
	return n
}

// Validate checks the bundle's structural integrity.
func (b *Bundle) Validate() error {
	if b.Version != Version {
		return fmt.Errorf("trace: bundle version %d, this build reads version %d", b.Version, Version)
	}
	if b.Plan != nil {
		if err := b.Plan.Validate(); err != nil {
			return err
		}
	}
	if err := b.Spec.Config().Validate(); err != nil {
		return err
	}
	// The digest records the protocol the run executed under; the spec
	// selects the protocol a replay will rebuild. A disagreement means the
	// bundle was edited after recording — replaying it would grade one
	// protocol's trace against another's digest, so refuse up front.
	if b.Digest.Protocol != b.Spec.Protocol {
		return fmt.Errorf("trace: bundle protocol mismatch: machine spec says %q but the digest was recorded under %q — the bundle was modified after recording",
			specProtoName(b.Spec.Protocol), specProtoName(b.Digest.Protocol))
	}
	return nil
}

// specProtoName renders a normalized protocol field for error messages
// ("" is the MESIF default).
func specProtoName(s string) string {
	if s == "" {
		return string(coherence.MESIF)
	}
	return s
}

// WriteFile serializes the bundle to path (0644, indented JSON).
func WriteFile(path string, b *Bundle) error {
	data, err := json.MarshalIndent(b, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads and validates a bundle.
func ReadFile(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	return &b, nil
}
