package trace

import (
	"math"

	"haswellep/internal/bwmodel"
)

// FlowSolve is one recorded bwmodel.MaxMin invocation: the flows and
// capacities verbatim, and the allocation as raw IEEE-754 bits. The solver
// is a pure float fixpoint iteration, so replay re-runs it on the recorded
// inputs and demands bit-identical output — float comparison by value
// would hide exactly the evaluation-order drift the flight recorder
// exists to catch.
type FlowSolve struct {
	Flows []bwmodel.Flow `json:"flows"`
	Caps  []float64      `json:"caps"`
	// AllocBits is math.Float64bits of each allocation entry. Bits, not
	// values: JSON round-trips Go floats exactly, but the bit encoding
	// makes the byte-identity contract explicit in the bundle itself.
	AllocBits []uint64 `json:"alloc_bits"`
}

// AllocBits encodes an allocation as raw float bits.
func AllocBits(alloc []float64) []uint64 {
	out := make([]uint64, len(alloc))
	for i, v := range alloc {
		out[i] = math.Float64bits(v)
	}
	return out
}

// maxFlowSolves bounds the per-recorder solve log. Harness runs invoke the
// solver once per measurement point — far below the cap — so hitting it
// means a runaway loop; the overflow count makes the truncation visible.
const maxFlowSolves = 4096

// RecordFlowSolve logs one multi-flow solver invocation. Inputs are
// deep-copied: callers are free to reuse their flow slices and maps.
func (r *Recorder) RecordFlowSolve(flows []bwmodel.Flow, caps, alloc []float64) {
	if len(r.flowSolves) >= maxFlowSolves {
		r.flowSolveOverflow++
		return
	}
	fs := FlowSolve{
		Flows:     make([]bwmodel.Flow, len(flows)),
		Caps:      append([]float64(nil), caps...),
		AllocBits: AllocBits(alloc),
	}
	for i, f := range flows {
		uses := make(map[int]float64, len(f.Uses))
		//hsw:unordered map-to-map copy; the result compares equal regardless of visit order
		for k, v := range f.Uses {
			uses[k] = v
		}
		fs.Flows[i] = bwmodel.Flow{Demand: f.Demand, Uses: uses}
	}
	r.flowSolves = append(r.flowSolves, fs)
}

// FlowSolves returns the recorded solver invocations, oldest first. The
// returned slice is shared; callers must not mutate it.
func (r *Recorder) FlowSolves() []FlowSolve { return r.flowSolves }
