// Package trace is the failure flight recorder of the simulator: a bounded
// ring recorder that logs every engine transaction — together with the
// allocations, machine resets, and deliberate state corruptions that shape
// the run — compactly enough to stay attached for entire sweeps, and a
// self-contained, versioned repro bundle format that freezes a failing run
// to disk (machine configuration, snoop mode, fault plan, op trace, and the
// triggering invariant finding).
//
// Determinism is the whole point: the engine is single-threaded and the
// fault injector draws from one seeded PRNG stream in transaction order, so
// re-executing a recorded event sequence against a freshly built machine
// reproduces every latency, counter, and state transition byte-identically.
// Package replay does exactly that, and shrinks bundles to minimal repros.
//
// The recorder attaches to mesif.Engine.AfterAccess (which fires before
// AfterTransaction, so an invariant checker chained there observes a trace
// that already contains the violating transaction), machine.Machine.OnAlloc,
// and machine.Machine.OnReset. With no recorder attached the hooks are nil
// and the transaction path pays nothing.
//
// This package deliberately does not import package invariant — the
// invariant package (and its internal test rigs) import trace to write
// bundles, so findings cross the boundary as the protocol-independent
// Finding type here.
//
//hsw:tier engine
package trace

import (
	"fmt"

	"haswellep/internal/addr"
	"haswellep/internal/cache"
	"haswellep/internal/coherence"
	"haswellep/internal/directory"
	"haswellep/internal/fault"
	"haswellep/internal/machine"
	"haswellep/internal/mesif"
	"haswellep/internal/topology"
	"haswellep/internal/units"
)

// EventKind classifies one recorded event.
type EventKind int

// Event kinds. The Corrupt* kinds are deliberate, replayable state
// corruptions applied through the machine's exported mutators — the test
// rigs use them to manufacture hard invariant violations on demand (the
// healthy engine never produces one), and a replay re-applies them at the
// same position in the stream.
const (
	// EvOp is one engine transaction (Engine.Do / Read / Write / Flush).
	EvOp EventKind = iota
	// EvAlloc is one Machine.AllocOnNode call. Allocation bases are a
	// pure function of the per-node allocation history, so replaying the
	// allocs in order reproduces every region; Base double-checks it.
	EvAlloc
	// EvReset is one Machine.Reset call (allocations survive it).
	EvReset
	// EvCorruptDir overwrites a line's in-memory directory entry at its
	// home agent with State (a directory.MemState).
	EvCorruptDir
	// EvCorruptL3 rewrites the line's state in a node's L3 slice to
	// State (a cache.State); Invalid silently drops the entry.
	EvCorruptL3
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvOp:
		return "op"
	case EvAlloc:
		return "alloc"
	case EvReset:
		return "reset"
	case EvCorruptDir:
		return "corrupt-dir"
	case EvCorruptL3:
		return "corrupt-l3"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one recorded event, compact enough to buffer by the million
// (~72 bytes). Field use by kind:
//
//	EvOp:         Op, Core, Line, WS (engine working set during the op),
//	              Seq (injector transaction seq after the op; 0 = no injector)
//	EvAlloc:      Node, Size (requested bytes), Base (region base handed out)
//	EvReset:      —
//	EvCorruptDir: Line, State (directory.MemState)
//	EvCorruptL3:  Node, Line, State (cache.State)
type Event struct {
	Kind  EventKind       `json:"k"`
	Op    mesif.Op        `json:"op,omitempty"`
	Core  topology.CoreID `json:"c,omitempty"`
	Line  addr.LineAddr   `json:"l,omitempty"`
	WS    int64           `json:"w,omitempty"`
	Seq   uint64          `json:"q,omitempty"`
	Node  topology.NodeID `json:"n,omitempty"`
	Size  int64           `json:"s,omitempty"`
	Base  addr.PAddr      `json:"b,omitempty"`
	State int             `json:"st,omitempty"`
}

// Digest summarizes a recorded (or replayed) run in fixed-width fields, so
// two digests from the same event stream compare with ==. Latency is summed
// in integer picoseconds (units.Time), making the comparison exact, not
// approximate. The digest is accumulated by the recorder itself and is
// therefore immune to Engine.ResetStats calls mid-run.
type Digest struct {
	Ops       uint64                   `json:"ops"`
	Reads     uint64                   `json:"reads"`
	Writes    uint64                   `json:"writes"`
	Flushes   uint64                   `json:"flushes"`
	BySource  [mesif.NumSources]uint64 `json:"by_source"`
	Broadcast uint64                   `json:"broadcasts"`
	DirHits   uint64                   `json:"dir_hits"`
	LatencyPs units.Time               `json:"latency_ps"`
	Fault     fault.Counters           `json:"fault"`
	// Protocol is the coherence protocol the digest was recorded under,
	// normalized like Spec.Protocol (MESIF reads as ""). Folding it into
	// the digest makes a replay under the wrong protocol fail digest
	// equality even when the counters happen to agree.
	Protocol string `json:"protocol,omitempty"`
}

// Finding is the bundle's protocol-independent form of one invariant
// violation: the numeric kind/class (matching invariant.Kind and
// invariant.Class) plus their names for human readers, the line, and the
// transaction that exposed it. Two findings denote the same failure when
// Kind, Class, and Line agree — Matches implements exactly that, the
// replay acceptance criterion.
type Finding struct {
	Kind      int           `json:"kind"`
	KindName  string        `json:"kind_name"`
	Class     int           `json:"class"`
	ClassName string        `json:"class_name"`
	Line      addr.LineAddr `json:"line"`
	Detail    string        `json:"detail,omitempty"`
	Op        int           `json:"op"`
	Core      int           `json:"core"`
}

// Matches reports whether two findings denote the same failure: identical
// (kind, class, line). Detail, op, and core are diagnostic only — a replay
// with a tighter checker cadence may detect the same damage one
// transaction earlier.
func (f Finding) Matches(g Finding) bool {
	return f.Kind == g.Kind && f.Class == g.Class && f.Line == g.Line
}

// String formats the finding for logs.
func (f Finding) String() string {
	return fmt.Sprintf("%s/%s line %#x: %s", f.KindName, f.ClassName, uint64(f.Line), f.Detail)
}

// DefaultCapacity is the ring capacity Attach uses when Options.Capacity
// is 0: a million events (~72 MiB when full) — enough for every
// verification workload in this repo; capacity-scale experiment sweeps
// overflow it, in which case the bundle is marked truncated and replay
// refuses it (see Bundle.Truncated).
const DefaultCapacity = 1 << 20

// Options tunes Attach.
type Options struct {
	// Capacity bounds the ring; 0 means DefaultCapacity.
	Capacity int
}

// Recorder is the flight recorder for one engine. It is single-threaded,
// like the engine it observes.
type Recorder struct {
	e *mesif.Engine
	m *machine.Machine

	cap      int
	buf      []Event // circular once len == cap
	start    int     // index of the oldest event when wrapped
	total    uint64  // events appended since the baseline
	overflow uint64  // events dropped from the ring's head
	baseline []Event // preamble restored by ResetToBaseline

	// flowSolves logs multi-flow bandwidth-solver invocations (see
	// flowsolve.go); they ride in bundles next to the event stream.
	flowSolves        []FlowSolve
	flowSolveOverflow uint64

	digest Digest

	prevAccess func(mesif.Op, topology.CoreID, addr.LineAddr, mesif.Access)
	prevAlloc  func(topology.NodeID, int64, addr.Region)
	prevReset  func()
	detached   bool
}

// Attach installs a flight recorder on the engine (and its machine). The
// recorder chains to previously installed AfterAccess/OnAlloc/OnReset
// hooks; Detach restores them — when hooks are stacked, detach in LIFO
// order.
func Attach(e *mesif.Engine, o Options) *Recorder {
	if o.Capacity <= 0 {
		o.Capacity = DefaultCapacity
	}
	r := &Recorder{e: e, m: e.M, cap: o.Capacity}
	r.prevAccess = e.AfterAccess
	e.AfterAccess = func(op mesif.Op, core topology.CoreID, l addr.LineAddr, a mesif.Access) {
		r.onAccess(op, core, l, a)
		if r.prevAccess != nil {
			r.prevAccess(op, core, l, a)
		}
	}
	r.prevAlloc = r.m.OnAlloc
	r.m.OnAlloc = func(node topology.NodeID, size int64, reg addr.Region) {
		r.append(Event{Kind: EvAlloc, Node: node, Size: size, Base: reg.Base})
		if r.prevAlloc != nil {
			r.prevAlloc(node, size, reg)
		}
	}
	r.prevReset = r.m.OnReset
	r.m.OnReset = func() {
		r.append(Event{Kind: EvReset})
		if r.prevReset != nil {
			r.prevReset()
		}
	}
	return r
}

// Detach restores the hooks installed before Attach. The recorded events
// stay readable.
func (r *Recorder) Detach() {
	if r.detached {
		return
	}
	r.detached = true
	r.e.AfterAccess = r.prevAccess
	r.m.OnAlloc = r.prevAlloc
	r.m.OnReset = r.prevReset
}

// onAccess logs one completed transaction and folds it into the digest.
func (r *Recorder) onAccess(op mesif.Op, core topology.CoreID, l addr.LineAddr, a mesif.Access) {
	var seq uint64
	if r.e.Faults != nil {
		seq = r.e.Faults.Seq()
	}
	r.append(Event{Kind: EvOp, Op: op, Core: core, Line: l, WS: r.e.WorkingSet, Seq: seq})
	d := &r.digest
	d.Ops++
	switch op {
	case mesif.OpRead:
		d.Reads++
	case mesif.OpWrite:
		d.Writes++
	case mesif.OpFlush:
		d.Flushes++
	}
	if a.Source >= 0 && a.Source < mesif.NumSources {
		d.BySource[a.Source]++
	}
	if a.Broadcast {
		d.Broadcast++
	}
	if a.DirCacheHit {
		d.DirHits++
	}
	d.LatencyPs += a.Latency
}

// append pushes one event into the ring, dropping the oldest on overflow.
func (r *Recorder) append(ev Event) {
	r.total++
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, ev)
		return
	}
	r.buf[r.start] = ev
	r.start = (r.start + 1) % r.cap
	r.overflow++
}

// Events returns the buffered events in order, oldest first. The returned
// slice is a copy.
func (r *Recorder) Events() []Event {
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.start:]...)
	out = append(out, r.buf[:r.start]...)
	return out
}

// Total returns the number of events appended since the baseline,
// including any that overflowed out of the ring.
func (r *Recorder) Total() uint64 { return r.total }

// Overflowed returns how many events were dropped from the ring's head.
// A nonzero value means the buffer no longer starts at a reconstructible
// machine state and the resulting bundle cannot be replayed.
func (r *Recorder) Overflowed() uint64 { return r.overflow }

// Digest returns the digest of everything recorded since the baseline,
// with the engine's fault counters (if an injector is attached) folded in
// at call time.
func (r *Recorder) Digest() Digest {
	d := r.digest
	if r.e.Faults != nil {
		d.Fault = r.e.Faults.Counters()
	}
	if id := coherence.Normalize(r.m.Cfg.Protocol); id != coherence.MESIF {
		d.Protocol = string(id)
	}
	return d
}

// SetBaseline snapshots the current buffer as the preamble that
// ResetToBaseline restores — typically the EvAlloc events of a rig's
// one-time setup. It fails if the ring has already overflowed. The digest
// restarts empty: baseline events are expected to be allocations, which
// contribute nothing to the digest.
func (r *Recorder) SetBaseline() error {
	if r.overflow > 0 {
		return fmt.Errorf("trace: cannot baseline a ring that dropped %d events", r.overflow)
	}
	r.baseline = r.Events()
	r.digest = Digest{}
	r.total = uint64(len(r.baseline))
	return nil
}

// ResetToBaseline discards everything recorded after the baseline. The
// caller must have returned the machine to its power-on-equivalent state
// (flush-reset or Machine.Reset) and freshly Reset the fault injector, so
// that a bundle recorded after this point replays against a newly built
// machine — the fuzz rigs do exactly this between inputs.
func (r *Recorder) ResetToBaseline() {
	r.buf = append(r.buf[:0], r.baseline...)
	r.start = 0
	r.overflow = 0
	r.total = uint64(len(r.buf))
	r.digest = Digest{}
	r.flowSolves = nil
	r.flowSolveOverflow = 0
}

// CorruptDirectory overwrites the line's in-memory directory entry with
// st and records the corruption as a replayable event. It fails when the
// line is unmapped or its home agent runs no directory.
func (r *Recorder) CorruptDirectory(l addr.LineAddr, st directory.MemState) error {
	ev := Event{Kind: EvCorruptDir, Line: l, State: int(st)}
	if err := Apply(r.m, ev); err != nil {
		return err
	}
	r.append(ev)
	return nil
}

// CorruptL3 rewrites the line's state in the node's L3 slice (Invalid
// drops the entry, stranding any private copies) and records the
// corruption as a replayable event.
func (r *Recorder) CorruptL3(node topology.NodeID, l addr.LineAddr, st cache.State) error {
	ev := Event{Kind: EvCorruptL3, Node: node, Line: l, State: int(st)}
	if err := Apply(r.m, ev); err != nil {
		return err
	}
	r.append(ev)
	return nil
}

// Apply applies a corruption event's state mutation to the machine;
// package replay uses it to re-apply recorded corruptions. EvOp, EvAlloc,
// and EvReset are not state corruptions and are rejected.
func Apply(m *machine.Machine, ev Event) error {
	switch ev.Kind {
	case EvCorruptDir:
		if _, err := m.HomeNode(ev.Line); err != nil {
			return err
		}
		ha := m.HA(ev.Line)
		if ha.Dir == nil {
			return fmt.Errorf("trace: line %#x's home agent runs no in-memory directory", uint64(ev.Line))
		}
		ha.Dir.SetState(ev.Line, directory.MemState(ev.State))
		return nil
	case EvCorruptL3:
		if int(ev.Node) < 0 || int(ev.Node) >= m.Topo.Nodes() {
			return fmt.Errorf("trace: node %d out of range", ev.Node)
		}
		sl := m.CAForNode(ev.Node, ev.Line)
		st := cache.State(ev.State)
		if st == cache.Invalid {
			m.Slice(sl).Invalidate(ev.Line)
			return nil
		}
		if !m.Slice(sl).Update(ev.Line, func(ln *cache.Line) { ln.State = st }) {
			return fmt.Errorf("trace: node %d's L3 does not hold line %#x", ev.Node, uint64(ev.Line))
		}
		return nil
	default:
		return fmt.Errorf("trace: event kind %v is not a corruption", ev.Kind)
	}
}
