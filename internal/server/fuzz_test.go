package server

import (
	"strings"
	"testing"
)

// FuzzDecodeQuery holds the whole query-decoding path — JSON envelope →
// machine config + workload spec — to the structured-rejection contract:
// any byte string either decodes into canonical, validated specs or comes
// back as a *QueryError; it never panics and never lets an impossible
// geometry through. The seed corpus mixes valid requests with hostile
// ones (impossible geometries, overflow-shaped numbers, unknown fields,
// trailing garbage, traversal-shaped labels).
func FuzzDecodeQuery(f *testing.F) {
	seeds := []string{
		// Valid, one of each kind.
		`{"queries":[{"kind":"latency","mode":"home","from_node":0,"to_node":1}]}`,
		`{"queries":[{"kind":"bandwidth","mode":"cod","from_node":0,"to_node":3,"cores":6,"size_bytes":4194304}]}`,
		`{"queries":[{"kind":"placement","mode":"source","from_node":1,"protocol":"moesi","die":8,"sockets":1}]}`,
		`{"queries":[{"kind":"chaos","seed":7,"rate":0.05,"label":"smoke"}],"deadline_ms":30000}`,
		// Hostile: impossible geometries and range abuse.
		`{"queries":[{"kind":"latency","mode":"cod","die":8}]}`,
		`{"queries":[{"kind":"latency","mode":"home","sockets":3}]}`,
		`{"queries":[{"kind":"latency","mode":"home","from_node":-1}]}`,
		`{"queries":[{"kind":"latency","mode":"home","size_bytes":9223372036854775807}]}`,
		`{"queries":[{"kind":"bandwidth","mode":"home","cores":2147483647}]}`,
		`{"queries":[{"kind":"chaos","rate":1e308}]}`,
		`{"queries":[{"kind":"chaos","rate":-0.0}]}`,
		// Hostile: protocol/mode/kind confusion, labels, structure.
		`{"queries":[{"kind":"latency","mode":"HOME"}]}`,
		`{"queries":[{"kind":"latency","mode":"home","protocol":"MESIF "}]}`,
		`{"queries":[{"kind":"latency","mode":"home","label":"../../../etc/passwd"}]}`,
		`{"queries":[{"kind":"latency","mode":"home","label":"` + strings.Repeat("a", 64) + `"}]}`,
		`{"queries":[{"kind":"latency","mode":"home","extra":1}]}`,
		`{"queries":[{"kind":"latency","mode":"home"}],"deadline_ms":-9}`,
		`{"queries":[{"kind":"latency","mode":"home"}]}{"queries":[]}`,
		`{"queries":[]}`,
		`{"queries": null}`,
		`[]`,
		`{`,
		"",
		"\xff\xfe",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		specs, _, qerr := DecodeBatch(strings.NewReader(string(data)), 1<<16, 16)
		if qerr != nil {
			if specs != nil {
				t.Fatal("specs returned alongside a decode error")
			}
			if qerr.Detail == "" {
				t.Fatal("structured error with empty detail")
			}
			return
		}
		if len(specs) == 0 {
			t.Fatal("accepted request decoded to zero specs")
		}
		for i, s := range specs {
			// Everything that decodes is canonical: it validates, builds
			// a constructible machine config, and has a stable identity.
			if err := s.Validate(); err != nil {
				t.Fatalf("spec %d accepted but invalid: %v (%+v)", i, err, s)
			}
			if err := s.Config().Validate(); err != nil {
				t.Fatalf("spec %d yields an invalid machine config: %v", i, err)
			}
			c, err := s.Canonical()
			if err != nil {
				t.Fatalf("spec %d not re-canonicalizable: %v", i, err)
			}
			if c.Key() != s.Key() {
				t.Fatalf("spec %d key unstable under canonicalization: %q vs %q", i, s.Key(), c.Key())
			}
		}
	})
}
