package server

import (
	"sort"
	"sync"
	"time"
)

// breakerPhase is one key's circuit state.
type breakerPhase int

const (
	breakerClosed breakerPhase = iota
	breakerOpen
	breakerHalfOpen
)

func (p breakerPhase) String() string {
	switch p {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// breakerState is one memo key's circuit.
type breakerState struct {
	phase breakerPhase
	// fails counts consecutive hard failures (panics and deadline
	// abandonments) while closed; threshold of them trips the circuit.
	fails int
	// probe marks that the half-open circuit has already admitted its one
	// probe execution.
	probe bool
}

// breakerSet is the per-key circuit breaker: a key that keeps panicking or
// blowing its deadline is cut off — served degraded immediately, costing
// the queue nothing — until a cooldown expires and one probe execution is
// allowed through to test whether the key recovered. Plain errors do not
// trip it: they are already retried and bounded by the farm; the breaker
// exists for the failure modes that burn a worker or a deadline each time.
type breakerSet struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	m         map[string]*breakerState
}

func newBreakerSet(threshold int, cooldown time.Duration) *breakerSet {
	return &breakerSet{threshold: threshold, cooldown: cooldown, m: make(map[string]*breakerState)}
}

// allow reports whether an execution of key may proceed. In half-open it
// admits exactly one probe; callers that get true MUST report the outcome
// via onSuccess or onHardFailure (or onProbeAbandoned when the execution
// never happened), or the circuit wedges half-open.
func (b *breakerSet) allow(key string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.m[key]
	if st == nil {
		return true
	}
	switch st.phase {
	case breakerOpen:
		return false
	case breakerHalfOpen:
		if st.probe {
			return false
		}
		st.probe = true
		return true
	default:
		return true
	}
}

// onSuccess records a completed execution: the circuit closes and the
// consecutive-failure count resets.
func (b *breakerSet) onSuccess(key string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if st := b.m[key]; st != nil {
		delete(b.m, key)
	}
}

// onProbeAbandoned returns the half-open probe slot without an outcome
// (the execution was cancelled before it ran).
func (b *breakerSet) onProbeAbandoned(key string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if st := b.m[key]; st != nil && st.phase == breakerHalfOpen {
		st.probe = false
	}
}

// onHardFailure records a panic or deadline abandonment. While closed it
// counts toward the threshold; a half-open probe failing reopens
// immediately. Tripping schedules the half-open transition after the
// cooldown (time.AfterFunc — the serving layer never reads the wall
// clock).
func (b *breakerSet) onHardFailure(key string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.m[key]
	if st == nil {
		st = &breakerState{}
		b.m[key] = st
	}
	switch st.phase {
	case breakerHalfOpen:
		b.trip(key, st)
	case breakerClosed:
		st.fails++
		if st.fails >= b.threshold {
			b.trip(key, st)
		}
	}
}

// trip opens the circuit and arms the cooldown. Callers hold b.mu.
func (b *breakerSet) trip(key string, st *breakerState) {
	st.phase = breakerOpen
	st.probe = false
	st.fails = 0
	time.AfterFunc(b.cooldown, func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if cur := b.m[key]; cur != nil && cur.phase == breakerOpen {
			cur.phase = breakerHalfOpen
			cur.probe = false
		}
	})
}

// breakerInfo is one tripped circuit's /statz row.
type breakerInfo struct {
	Key   string `json:"key"`
	Phase string `json:"phase"`
}

// snapshot lists every non-closed circuit, sorted by key for deterministic
// output.
func (b *breakerSet) snapshot() []breakerInfo {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]breakerInfo, 0, len(b.m))
	//hsw:unordered collected into a slice and sorted below
	for k, st := range b.m {
		if st.phase == breakerClosed {
			continue
		}
		out = append(out, breakerInfo{Key: k, Phase: st.phase.String()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
