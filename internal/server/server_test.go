package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"haswellep/internal/experiments"
	"haswellep/internal/farm"
)

// stubAnswer is the deterministic stand-in answer for a spec: derived only
// from the key, so re-execution anywhere reproduces it.
func stubAnswer(s experiments.WhatIfSpec) experiments.WhatIfAnswer {
	return experiments.WhatIfAnswer{
		Kind:    s.Kind,
		Latency: &experiments.LatencyAnswer{Ns: float64(len(s.Key())), Lines: 1},
	}
}

// newTestServer builds a server on a temp journal with a fast stub point
// function, letting tests mutate cfg first.
func newTestServer(t *testing.T, mut func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		JournalPath:   filepath.Join(t.TempDir(), "memo.journal"),
		Shards:        2,
		PointDeadline: 30 * time.Second,
		RunPoint: func(_ *farm.Ctx, s experiments.WhatIfSpec, _ experiments.WhatIfOptions) (experiments.WhatIfAnswer, error) {
			return stubAnswer(s), nil
		},
	}
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// doPost is the goroutine-safe POST helper (no testing.T); post wraps it
// with fatal error handling for main-goroutine call sites.
func doPost(url, body string, hdr map[string]string) (*http.Response, []byte, error) {
	req, err := http.NewRequest(http.MethodPost, url+"/v1/whatif", bytes.NewReader([]byte(body)))
	if err != nil {
		return nil, nil, err
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, nil, err
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, nil, err
	}
	return resp, b, nil
}

func post(t *testing.T, url, body string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	resp, b, err := doPost(url, body, hdr)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	return resp, b
}

func getStatz(t *testing.T, url string) Statz {
	t.Helper()
	resp, err := http.Get(url + "/statz")
	if err != nil {
		t.Fatalf("GET /statz: %v", err)
	}
	defer resp.Body.Close()
	var st Statz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding statz: %v", err)
	}
	return st
}

const qLatency = `{"queries":[{"kind":"latency","mode":"home","from_node":0,"to_node":1}]}`

func TestServeMemoizeAndByteIdenticalRestart(t *testing.T) {
	var calls atomic.Int64
	jpath := filepath.Join(t.TempDir(), "memo.journal")
	s, ts := newTestServer(t, func(c *Config) {
		c.JournalPath = jpath
		c.RunPoint = func(_ *farm.Ctx, sp experiments.WhatIfSpec, _ experiments.WhatIfOptions) (experiments.WhatIfAnswer, error) {
			calls.Add(1)
			return stubAnswer(sp), nil
		}
	})

	resp1, body1 := post(t, ts.URL, qLatency, nil)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first query: %d %s", resp1.StatusCode, body1)
	}
	if resp1.Header.Get("X-Hswd-Executed") != "1" {
		t.Fatalf("first query executed %q points, want 1", resp1.Header.Get("X-Hswd-Executed"))
	}
	resp2, body2 := post(t, ts.URL, qLatency, nil)
	if resp2.Header.Get("X-Hswd-Cache-Hits") != "1" || resp2.Header.Get("X-Hswd-Executed") != "0" {
		t.Fatalf("second query not a pure cache hit: hits=%q executed=%q",
			resp2.Header.Get("X-Hswd-Cache-Hits"), resp2.Header.Get("X-Hswd-Executed"))
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("memoized response differs:\n%s\n%s", body1, body2)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("point executed %d times, want 1", n)
	}
	st := getStatz(t, ts.URL)
	if st.Counters.CacheHits != 1 || st.Counters.Executed != 1 || st.JournalPoints != 1 {
		t.Fatalf("statz after memoized pair: %+v", st)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	// Restart on the same journal: the answer re-serves byte-identically
	// with zero executions.
	s2, ts2 := newTestServer(t, func(c *Config) {
		c.JournalPath = jpath
		c.RunPoint = func(_ *farm.Ctx, sp experiments.WhatIfSpec, _ experiments.WhatIfOptions) (experiments.WhatIfAnswer, error) {
			t.Error("restarted server re-executed a journaled point")
			return stubAnswer(sp), nil
		}
	})
	defer s2.Drain(context.Background())
	resp3, body3 := post(t, ts2.URL, qLatency, nil)
	if resp3.StatusCode != http.StatusOK || resp3.Header.Get("X-Hswd-Executed") != "0" {
		t.Fatalf("restarted query: %d executed=%q", resp3.StatusCode, resp3.Header.Get("X-Hswd-Executed"))
	}
	if !bytes.Equal(body1, body3) {
		t.Fatalf("restarted response not byte-identical:\n%s\n%s", body1, body3)
	}
}

func TestBatchDeduplicatesAndOrders(t *testing.T) {
	s, ts := newTestServer(t, nil)
	defer s.Drain(context.Background())
	body := `{"queries":[
		{"kind":"latency","mode":"home","from_node":0,"to_node":1},
		{"kind":"latency","mode":"home","from_node":1,"to_node":0},
		{"kind":"latency","mode":"home","from_node":0,"to_node":1}
	]}`
	resp, b := post(t, ts.URL, body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, b)
	}
	if resp.Header.Get("X-Hswd-Executed") != "2" {
		t.Fatalf("duplicate query not deduped: executed=%q", resp.Header.Get("X-Hswd-Executed"))
	}
	var out Response
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("want 3 result slots, got %d", len(out.Results))
	}
	if out.Results[0].Key != out.Results[2].Key || out.Results[0].Key == out.Results[1].Key {
		t.Fatalf("result ordering broken: %q %q %q", out.Results[0].Key, out.Results[1].Key, out.Results[2].Key)
	}
	if !bytes.Equal(out.Results[0].Answer, out.Results[2].Answer) {
		t.Fatal("duplicate slots differ")
	}
}

func TestSingleflightCoalesces(t *testing.T) {
	gate := make(chan struct{})
	var calls atomic.Int64
	s, ts := newTestServer(t, func(c *Config) {
		c.RunPoint = func(_ *farm.Ctx, sp experiments.WhatIfSpec, _ experiments.WhatIfOptions) (experiments.WhatIfAnswer, error) {
			calls.Add(1)
			<-gate
			return stubAnswer(sp), nil
		}
	})
	defer s.Drain(context.Background())

	const clients = 4
	var wg sync.WaitGroup
	bodies := make([][]byte, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, bodies[i], errs[i] = doPost(ts.URL, qLatency, nil)
		}(i)
	}
	// Wait until the one leader is actually executing, then release it.
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond) // let the joiners pile onto the flight
	close(gate)
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Fatalf("coalesced key executed %d times, want 1", n)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("client %d saw a different body:\n%s\n%s", i, bodies[0], bodies[i])
		}
	}
	st := getStatz(t, ts.URL)
	if st.Counters.Coalesced+st.Counters.CacheHits != clients-1 {
		t.Fatalf("want %d coalesced+hit slots, statz %+v", clients-1, st.Counters)
	}
}

func TestOverloadShedsWhileAdmittedComplete(t *testing.T) {
	gate := make(chan struct{})
	s, ts := newTestServer(t, func(c *Config) {
		c.QueueBudget = 1
		c.Shards = 1
		c.RunPoint = func(_ *farm.Ctx, sp experiments.WhatIfSpec, _ experiments.WhatIfOptions) (experiments.WhatIfAnswer, error) {
			<-gate
			return stubAnswer(sp), nil
		}
	})
	defer s.Drain(context.Background())

	admitted := make(chan []byte, 1)
	go func() {
		resp, b, err := doPost(ts.URL, qLatency, nil)
		if err != nil || resp.StatusCode != http.StatusOK {
			b = nil
		}
		admitted <- b
	}()
	// Wait until the admitted batch holds the queue.
	for {
		if st := getStatz(t, ts.URL); st.QueueDepth == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	// Every further miss must shed with 429 + Retry-After; a join of the
	// in-flight key must NOT shed.
	shedBody := `{"queries":[{"kind":"latency","mode":"source","from_node":0,"to_node":1}]}`
	resp, b := post(t, ts.URL, shedBody, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload not shed: %d %s", resp.StatusCode, b)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}

	join := make(chan *http.Response, 1)
	go func() {
		r, _, err := doPost(ts.URL, qLatency, nil)
		if err != nil {
			r = nil
		}
		join <- r
	}()
	time.Sleep(10 * time.Millisecond)
	close(gate)

	if b := <-admitted; b == nil {
		t.Fatal("admitted batch failed under overload")
	}
	if r := <-join; r == nil || r.StatusCode != http.StatusOK {
		t.Fatalf("coalescing join was shed: %v", r)
	}
	st := getStatz(t, ts.URL)
	if st.Counters.Shed != 1 {
		t.Fatalf("statz shed = %d, want 1", st.Counters.Shed)
	}
	if st.QueueDepth != 0 {
		t.Fatalf("queue not drained: %d", st.QueueDepth)
	}
}

func TestBreakerTripsAndRecovers(t *testing.T) {
	var calls atomic.Int64
	var healthy atomic.Bool
	s, ts := newTestServer(t, func(c *Config) {
		c.BreakerThreshold = 2
		c.BreakerCooldown = 50 * time.Millisecond
		c.Shards = 1
		c.RunPoint = func(_ *farm.Ctx, sp experiments.WhatIfSpec, _ experiments.WhatIfOptions) (experiments.WhatIfAnswer, error) {
			calls.Add(1)
			if !healthy.Load() {
				panic("wedged point")
			}
			return stubAnswer(sp), nil
		}
	})
	defer s.Drain(context.Background())

	degradedKind := func(b []byte) string {
		var out Response
		if err := json.Unmarshal(b, &out); err != nil || len(out.Results) != 1 {
			t.Fatalf("bad response %s: %v", b, err)
		}
		if out.Results[0].Degraded == nil {
			return ""
		}
		return out.Results[0].Degraded.Kind
	}

	// Two panics trip the circuit...
	for i := 0; i < 2; i++ {
		resp, b := post(t, ts.URL, qLatency, nil)
		if resp.StatusCode != http.StatusOK || degradedKind(b) != "panic" {
			t.Fatalf("panic %d not a structured degraded response: %d %s", i, resp.StatusCode, b)
		}
	}
	// ...after which the key is served degraded without executing.
	before := calls.Load()
	resp, b := post(t, ts.URL, qLatency, nil)
	if degradedKind(b) != "breaker_open" {
		t.Fatalf("tripped key not breaker_open: %d %s", resp.StatusCode, b)
	}
	if calls.Load() != before {
		t.Fatal("breaker-open key still executed")
	}
	st := getStatz(t, ts.URL)
	if len(st.Breakers) != 1 || st.Breakers[0].Phase != "open" {
		t.Fatalf("statz breakers: %+v", st.Breakers)
	}
	if st.Counters.Panics < 2 || st.Counters.BreakerDenied != 1 {
		t.Fatalf("statz counters: %+v", st.Counters)
	}

	// After the cooldown the half-open probe goes through; a healthy point
	// closes the circuit.
	healthy.Store(true)
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, b = post(t, ts.URL, qLatency, nil)
		if degradedKind(b) == "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never recovered: %s", b)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(getStatz(t, ts.URL).Breakers) != 0 {
		t.Fatal("recovered circuit still listed in statz")
	}
}

func TestInjectPanicProducesDegradedResponse(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.AllowInjectPanic = true
		c.RunPoint = func(_ *farm.Ctx, sp experiments.WhatIfSpec, o experiments.WhatIfOptions) (experiments.WhatIfAnswer, error) {
			if o.InjectPanic {
				panic("injected")
			}
			return stubAnswer(sp), nil
		}
	})
	defer s.Drain(context.Background())

	resp, b := post(t, ts.URL, qLatency, map[string]string{"X-Hswd-Inject-Panic": "1"})
	var out Response
	if err := json.Unmarshal(b, &out); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("inject-panic response: %d %s (%v)", resp.StatusCode, b, err)
	}
	d := out.Results[0].Degraded
	if d == nil || d.Kind != "panic" || d.Error == "" {
		t.Fatalf("want structured panic degradation, got %s", b)
	}
	// The panicking point must not have been journaled: without the
	// header the same key executes cleanly.
	resp2, b2 := post(t, ts.URL, qLatency, nil)
	if resp2.Header.Get("X-Hswd-Executed") != "1" {
		t.Fatalf("clean retry of the panicked key was not executed: %s", b2)
	}
}

func TestDrainStopsIntakeAndFinishesInFlight(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	s, ts := newTestServer(t, func(c *Config) {
		c.RunPoint = func(_ *farm.Ctx, sp experiments.WhatIfSpec, _ experiments.WhatIfOptions) (experiments.WhatIfAnswer, error) {
			once.Do(func() { close(entered) })
			<-gate
			return stubAnswer(sp), nil
		}
	})

	inflight := make(chan *http.Response, 1)
	go func() {
		r, _, err := doPost(ts.URL, qLatency, nil)
		if err != nil {
			r = nil
		}
		inflight <- r
	}()
	<-entered

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	// Draining: readyz flips, new intake refused.
	for {
		r, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatalf("readyz: %v", err)
		}
		r.Body.Close()
		if r.StatusCode == http.StatusServiceUnavailable {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if r, _ := post(t, ts.URL, qLatency, nil); r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("intake not closed while draining: %d", r.StatusCode)
	}

	close(gate)
	if r := <-inflight; r == nil || r.StatusCode != http.StatusOK {
		t.Fatalf("in-flight batch did not finish during drain: %v", r)
	}
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	// The journal closed with the in-flight point recorded.
	if s.Journal().Len() != 1 {
		t.Fatalf("journal holds %d points after drain, want 1", s.Journal().Len())
	}
}

func TestDrainDeadlineHardStops(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	s, ts := newTestServer(t, func(c *Config) {
		c.PointDeadline = 30 * time.Second // watchdog must not be what saves us
		c.RunPoint = func(fc *farm.Ctx, sp experiments.WhatIfSpec, _ experiments.WhatIfOptions) (experiments.WhatIfAnswer, error) {
			once.Do(func() { close(entered) })
			<-gate
			return experiments.WhatIfAnswer{}, fmt.Errorf("wedged")
		}
	})
	t.Cleanup(func() { close(gate) })

	go doPost(ts.URL, qLatency, nil)
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := make(chan error, 1)
	go func() { start <- s.Drain(ctx) }()
	select {
	case err := <-start:
		// The wedged attempt is abandoned by the farm only at its own
		// deadline; the hard-stop must not wait for it once the point's
		// error returns. Here the stub blocks forever, so Drain returns
		// after the context expires and the farm abandons via its
		// watchdog path — what we assert is that Drain came back at all,
		// promptly, with the context's error.
		if err == nil {
			t.Fatal("Drain returned nil despite expiring deadline")
		}
	case <-time.After(40 * time.Second):
		t.Fatal("Drain wedged past the hard-stop")
	}
}
