package server

import (
	"strings"
	"testing"

	"haswellep/internal/experiments"
)

func decodeOne(t *testing.T, body string) ([]experiments.WhatIfSpec, Request, *QueryError) {
	t.Helper()
	return DecodeBatch(strings.NewReader(body), 1<<20, 64)
}

func TestDecodeBatchValid(t *testing.T) {
	specs, req, qerr := decodeOne(t, `{"queries":[
		{"kind":"latency","mode":"home","from_node":0,"to_node":1},
		{"kind":"bandwidth","mode":"cod","from_node":0,"to_node":3,"cores":6},
		{"kind":"placement","mode":"source","from_node":1,"protocol":"moesi"},
		{"kind":"chaos","seed":7,"rate":0.05}
	],"deadline_ms":5000}`)
	if qerr != nil {
		t.Fatalf("DecodeBatch: %v", qerr)
	}
	if len(specs) != 4 || req.DeadlineMS != 5000 {
		t.Fatalf("got %d specs, deadline %d", len(specs), req.DeadlineMS)
	}
	for i, s := range specs {
		if err := s.Validate(); err != nil {
			t.Errorf("spec %d not canonical: %v", i, err)
		}
	}
	if specs[0].SizeBytes != experiments.SizeMem {
		t.Errorf("size default not applied: %d", specs[0].SizeBytes)
	}
	if specs[3].Kind != experiments.WhatIfChaos || specs[3].Seed != 7 {
		t.Errorf("chaos spec mangled: %+v", specs[3])
	}
}

func TestDecodeBatchRejects(t *testing.T) {
	cases := []struct {
		name, body string
		wantIndex  int
	}{
		{"not json", `hello`, -1},
		{"empty batch", `{"queries":[]}`, -1},
		{"unknown envelope field", `{"queries":[{"kind":"latency","mode":"home"}],"shards":4}`, -1},
		{"unknown query field", `{"queries":[{"kind":"latency","mode":"home","sized_bytes":1}]}`, -1},
		{"trailing garbage", `{"queries":[{"kind":"latency","mode":"home"}]} {}`, -1},
		{"negative deadline", `{"queries":[{"kind":"latency","mode":"home"}],"deadline_ms":-1}`, -1},
		{"unknown kind", `{"queries":[{"kind":"warp","mode":"home"}]}`, 0},
		{"missing mode", `{"queries":[{"kind":"latency"}]}`, 0},
		{"bad mode", `{"queries":[{"kind":"latency","mode":"turbo"}]}`, 0},
		{"bad protocol", `{"queries":[{"kind":"latency","mode":"home","protocol":"mesiff"}]}`, 0},
		{"bad die", `{"queries":[{"kind":"latency","mode":"home","die":10}]}`, 0},
		{"cod on die8", `{"queries":[{"kind":"latency","mode":"cod","die":8}]}`, 0},
		{"node out of range", `{"queries":[{"kind":"latency","mode":"home","from_node":2}]}`, 0},
		{"size out of range", `{"queries":[{"kind":"latency","mode":"home","size_bytes":1}]}`, 0},
		{"rate out of range", `{"queries":[{"kind":"chaos","rate":2}]}`, 0},
		{"hostile label", `{"queries":[{"kind":"latency","mode":"home","label":"../../etc"}]}`, 0},
		{"second query bad", `{"queries":[{"kind":"latency","mode":"home"},{"kind":"latency","mode":"home","cores":-1,"size_bytes":-5}]}`, 1},
	}
	for _, c := range cases {
		_, _, qerr := decodeOne(t, c.body)
		if qerr == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if qerr.Index != c.wantIndex {
			t.Errorf("%s: error index %d, want %d (%v)", c.name, qerr.Index, c.wantIndex, qerr)
		}
	}
}

func TestDecodeBatchLimits(t *testing.T) {
	// Over the batch limit.
	var b strings.Builder
	b.WriteString(`{"queries":[`)
	for i := 0; i < 65; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`{"kind":"latency","mode":"home"}`)
	}
	b.WriteString(`]}`)
	if _, _, qerr := decodeOne(t, b.String()); qerr == nil || qerr.Index != -1 {
		t.Errorf("oversized batch not rejected at the envelope: %v", qerr)
	}
	// Over the byte limit: the decoder sees a truncated body and fails
	// instead of reading without bound.
	big := `{"queries":[{"kind":"latency","mode":"home","label":"` + strings.Repeat("x", 200) + `"}]}`
	if _, _, qerr := DecodeBatch(strings.NewReader(big), 64, 64); qerr == nil {
		t.Error("body over the limit not rejected")
	}
}
