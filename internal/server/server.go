// Package server is the batch what-if serving layer (cmd/hswd): a
// long-running HTTP/JSON front end over the experiment farm that answers
// placement/latency/bandwidth/chaos what-if queries (machine config +
// protocol + snoop mode + workload), memoized by canonical query key in
// the farm's crash-safe checkpoint journal.
//
// Robustness is the product:
//
//   - the journal IS the memo store: every completed point is fsynced
//     before it is served, so a kill -9 mid-batch followed by a restart on
//     the same journal re-serves the same answers byte-identically without
//     re-executing completed points;
//   - duplicate in-flight queries coalesce (singleflight): one execution
//     serves every concurrent requester of a key;
//   - the work queue is bounded: a batch whose cache misses would push the
//     backlog past the budget is shed with 429 + Retry-After instead of
//     queuing without bound;
//   - a key that repeatedly panics or blows its deadline trips a per-key
//     circuit breaker and is served a structured degraded response —
//     partial batch results survive, the queue is not burned;
//   - SIGTERM drains gracefully: intake stops, in-flight batches finish
//     (or are checkpointed at the drain deadline), the journal flushes,
//     the process exits 0.
//
// /healthz, /readyz, and /statz make the degradation observable.
//
//hsw:tier harness
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"haswellep/internal/experiments"
	"haswellep/internal/farm"
)

// Campaign is the memo journal's campaign identity. Query keys carry the
// full (config, workload) identity, so one campaign spans every what-if
// the server can answer; bump the suffix when the key schema changes.
const Campaign = "hswd/whatif/v1"

// Config tunes one server instance.
type Config struct {
	// JournalPath locates the crash-safe memo journal (required).
	JournalPath string
	// Shards is the farm worker count per batch; below 1 means 1.
	Shards int
	// PointDeadline bounds one attempt of one point (farm watchdog);
	// 0 means the 2-minute default.
	PointDeadline time.Duration
	// Retries is the per-point retry budget; negative means 0.
	Retries int
	// Backoff is the farm's base retry backoff; 0 means farm.DefaultBackoff.
	Backoff time.Duration
	// QueueBudget bounds the points admitted for execution across all
	// in-flight batches; a batch pushing past it is shed (429). 0 means 64.
	QueueBudget int
	// BreakerThreshold is the consecutive hard failures (panic/deadline)
	// that trip a key's circuit; 0 means 3.
	BreakerThreshold int
	// BreakerCooldown is the open→half-open delay; 0 means 30s.
	BreakerCooldown time.Duration
	// BundleDir, when non-empty, captures repro bundles for panicking
	// points there (the response's degraded detail names the bundle).
	BundleDir string
	// AllowInjectPanic honors the X-Hswd-Inject-Panic request header —
	// the failure-path smoke hook (hswd -inject-panic). Never enable in
	// real serving.
	AllowInjectPanic bool
	// MaxBatch bounds the queries in one request; 0 means 64.
	MaxBatch int
	// MaxBodyBytes bounds the request body; 0 means 1 MiB.
	MaxBodyBytes int64
	// RunPoint executes one what-if point; nil means experiments.RunWhatIf.
	// Tests substitute deterministic stand-ins here.
	RunPoint func(fc *farm.Ctx, s experiments.WhatIfSpec, o experiments.WhatIfOptions) (experiments.WhatIfAnswer, error)
}

// withDefaults fills the zero fields.
func (c Config) withDefaults() Config {
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.PointDeadline == 0 {
		c.PointDeadline = 2 * time.Minute
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.QueueBudget == 0 {
		c.QueueBudget = 64
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = 30 * time.Second
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 64
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.RunPoint == nil {
		c.RunPoint = experiments.RunWhatIf
	}
	return c
}

// QueryResult is one query's slot in the response: a completed answer or a
// structured degraded record, never both. Completed answers are the
// journal's bytes verbatim, so a response is byte-identical whether the
// point was just executed or re-served across a restart.
type QueryResult struct {
	Key      string          `json:"key"`
	Answer   json.RawMessage `json:"answer,omitempty"`
	Degraded *Degraded       `json:"degraded,omitempty"`
}

// Degraded is the structured record of a point that could not be served:
// the farm's failure detail (kind, attempts, repro bundle) or the serving
// layer's own degradation (breaker_open, cancelled).
type Degraded struct {
	// Kind is "error", "panic", "deadline", "skipped", "breaker_open",
	// or "cancelled".
	Kind       string `json:"kind"`
	Attempts   int    `json:"attempts,omitempty"`
	Error      string `json:"error,omitempty"`
	BundlePath string `json:"bundle_path,omitempty"`
}

// Response is the POST /v1/whatif body: one result per query, in request
// order (duplicate queries share one result).
type Response struct {
	Results []QueryResult `json:"results"`
}

// counters is the /statz tally. Guarded by Server.mu.
type counters struct {
	// Queries counts query slots received in admitted (non-shed) batches.
	Queries uint64 `json:"queries"`
	// CacheHits counts slots served from the journal without execution
	// (including points another request completed while this one queued).
	CacheHits uint64 `json:"cache_hits"`
	// Coalesced counts slots that joined another request's in-flight
	// execution instead of executing again.
	Coalesced uint64 `json:"coalesced"`
	// Executed counts farm-executed points; Degraded the subset that
	// failed all attempts (Panics/Deadlines by kind, Retries re-attempts).
	Executed  uint64 `json:"executed"`
	Degraded  uint64 `json:"degraded"`
	Panics    uint64 `json:"panics"`
	Deadlines uint64 `json:"deadlines"`
	Retries   uint64 `json:"retries"`
	// Shed counts whole batches refused with 429; BreakerDenied counts
	// slots served degraded by an open circuit.
	Shed          uint64 `json:"shed"`
	BreakerDenied uint64 `json:"breaker_denied"`
}

// Statz is the /statz snapshot.
type Statz struct {
	QueueDepth    int           `json:"queue_depth"`
	QueueBudget   int           `json:"queue_budget"`
	Draining      bool          `json:"draining"`
	JournalPoints int           `json:"journal_points"`
	Counters      counters      `json:"counters"`
	Breakers      []breakerInfo `json:"breakers"`
}

// flight is one in-flight execution of a memo key; joiners wait on done
// and read res afterwards.
type flight struct {
	done chan struct{}
	res  QueryResult
}

// Server is one hswd instance. Create with New, serve Handler, stop with
// Drain.
type Server struct {
	cfg      Config
	journal  *farm.Journal
	breakers *breakerSet

	// hardCtx is cancelled when a drain deadline expires: every in-flight
	// batch's farm context is derived from it, and the farm's
	// interruptible backoff guarantees a prompt return.
	hardCtx    context.Context
	hardCancel context.CancelFunc

	mu       sync.Mutex
	draining bool
	queued   int // points admitted for execution, not yet finished
	flights  map[string]*flight
	ctr      counters
	wg       sync.WaitGroup // in-flight /v1/whatif handlers
}

// New opens (or resumes) the memo journal and builds the server.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.JournalPath == "" {
		return nil, fmt.Errorf("server: Config.JournalPath is required")
	}
	j, err := farm.OpenJournal(cfg.JournalPath, Campaign)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:        cfg,
		journal:    j,
		breakers:   newBreakerSet(cfg.BreakerThreshold, cfg.BreakerCooldown),
		hardCtx:    ctx,
		hardCancel: cancel,
		flights:    make(map[string]*flight),
	}, nil
}

// Journal exposes the memo journal (observability, tests).
func (s *Server) Journal() *farm.Journal { return s.journal }

// Handler returns the server's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/whatif", s.handleWhatIf)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /statz", s.handleStatz)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ready\n"))
}

func (s *Server) handleStatz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	st := Statz{
		QueueDepth:  s.queued,
		QueueBudget: s.cfg.QueueBudget,
		Draining:    s.draining,
		Counters:    s.ctr,
	}
	s.mu.Unlock()
	st.JournalPoints = s.journal.Len()
	st.Breakers = s.breakers.snapshot()
	writeJSON(w, http.StatusOK, st)
}

// handleWhatIf is the batch query endpoint. Lifecycle of one batch:
// decode strictly → dedupe to unique memo keys → serve journal hits →
// serve breaker-open keys degraded → shed if the remaining misses would
// blow the queue budget → split misses into leaders (this request
// executes them, one farm.Run) and joins (another request already is) →
// execute, journal, complete flights → assemble results in request order.
func (s *Server) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	specs, req, qerr := DecodeBatch(r.Body, s.cfg.MaxBodyBytes, s.cfg.MaxBatch)
	if qerr != nil {
		writeJSON(w, http.StatusBadRequest, qerr)
		return
	}

	// The drain gate: intake stops the moment Drain is called; requests
	// admitted before it finish under the drain deadline.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	s.wg.Add(1)
	s.mu.Unlock()
	defer s.wg.Done()

	// The batch context: the HTTP request's, bounded by the client
	// deadline when one was sent, and cut by the drain hard-stop.
	runCtx := r.Context()
	if req.DeadlineMS > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(runCtx, time.Duration(req.DeadlineMS)*time.Millisecond)
		defer cancel()
	}
	runCtx, cancelRun := context.WithCancel(runCtx)
	defer cancelRun()
	defer context.AfterFunc(s.hardCtx, cancelRun)()

	inject := s.cfg.AllowInjectPanic && r.Header.Get("X-Hswd-Inject-Panic") != ""

	// Dedupe to unique keys, preserving first-appearance order.
	keys := make([]string, len(specs))
	positions := make(map[string][]int, len(specs))
	specOf := make(map[string]experiments.WhatIfSpec, len(specs))
	var uniq []string
	for i, sp := range specs {
		k := sp.Key()
		keys[i] = k
		if _, seen := positions[k]; !seen {
			uniq = append(uniq, k)
			specOf[k] = sp
		}
		positions[k] = append(positions[k], i)
	}

	resolved := make(map[string]QueryResult, len(uniq))
	var toRun []string
	var hits, denied uint64
	for _, k := range uniq {
		if raw, ok := s.journal.Lookup(k); ok {
			resolved[k] = QueryResult{Key: k, Answer: raw}
			hits += uint64(len(positions[k]))
			continue
		}
		if !s.breakers.allow(k) {
			resolved[k] = QueryResult{Key: k, Degraded: &Degraded{
				Kind: "breaker_open",
				Error: fmt.Sprintf("circuit breaker open after %d consecutive hard failures; retry after the %v cooldown",
					s.cfg.BreakerThreshold, s.cfg.BreakerCooldown),
			}}
			denied += uint64(len(positions[k]))
			continue
		}
		toRun = append(toRun, k)
	}

	// Admission and singleflight split, atomically against other batches.
	var leaders []string
	joinOf := make(map[string]*flight)
	s.mu.Lock()
	newLeaders := 0
	for _, k := range toRun {
		if s.flights[k] == nil {
			newLeaders++
		}
	}
	if s.queued+newLeaders > s.cfg.QueueBudget {
		backlog := s.queued
		s.ctr.Shed++
		s.mu.Unlock()
		// Half-open probes this batch claimed never execute: return them.
		for _, k := range toRun {
			s.breakers.onProbeAbandoned(k)
		}
		retry := 1 + backlog/s.cfg.Shards
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeJSON(w, http.StatusTooManyRequests, map[string]any{
			"error": fmt.Sprintf("queue budget exceeded: %d points in flight, %d more requested, budget %d; retry after %ds",
				backlog, newLeaders, s.cfg.QueueBudget, retry),
		})
		return
	}
	var coalesced uint64
	for _, k := range toRun {
		if f := s.flights[k]; f != nil {
			joinOf[k] = f
			coalesced += uint64(len(positions[k]))
		} else {
			f = &flight{done: make(chan struct{})}
			s.flights[k] = f
			leaders = append(leaders, k)
		}
	}
	s.queued += len(leaders)
	s.ctr.Queries += uint64(len(specs))
	s.ctr.CacheHits += hits
	s.ctr.BreakerDenied += denied
	s.ctr.Coalesced += coalesced
	s.mu.Unlock()

	if len(leaders) > 0 {
		s.runLeaders(runCtx, leaders, specOf, inject, resolved)
	}
	for _, k := range toRun {
		f := joinOf[k]
		if f == nil {
			continue
		}
		select {
		case <-f.done:
			resolved[k] = f.res
		case <-runCtx.Done():
			resolved[k] = QueryResult{Key: k, Degraded: &Degraded{
				Kind:  "cancelled",
				Error: "request cancelled while waiting for a coalesced in-flight query",
			}}
		}
	}

	out := make([]QueryResult, len(keys))
	for i, k := range keys {
		out[i] = resolved[k]
	}
	w.Header().Set("X-Hswd-Cache-Hits", strconv.FormatUint(hits, 10))
	w.Header().Set("X-Hswd-Executed", strconv.Itoa(len(leaders)))
	writeJSON(w, http.StatusOK, Response{Results: out})
}

// runLeaders batch-executes this request's cache misses through one
// farm.Run: panic isolation, per-point deadline watchdog, bounded retries
// with interruptible backoff, and fsynced journaling of every completed
// point — then completes the singleflight flights and settles breakers and
// counters.
func (s *Server) runLeaders(ctx context.Context, leaders []string, specOf map[string]experiments.WhatIfSpec, inject bool, resolved map[string]QueryResult) {
	o := experiments.WhatIfOptions{BundleDir: s.cfg.BundleDir, InjectPanic: inject}
	results, runErr := farm.Run(ctx, farm.Options{
		Shards:        s.cfg.Shards,
		PointDeadline: s.cfg.PointDeadline,
		Retries:       s.cfg.Retries,
		Backoff:       s.cfg.Backoff,
		Journal:       s.journal,
	}, leaders, func(_ int, k string) string { return k },
		func(c *farm.Ctx, k string) (json.RawMessage, error) {
			ans, err := s.cfg.RunPoint(c, specOf[k], o)
			if err != nil {
				return nil, err
			}
			return json.Marshal(ans)
		})

	var tally counters
	finish := func(k string, qr QueryResult) {
		resolved[k] = qr
		s.mu.Lock()
		if f := s.flights[k]; f != nil {
			delete(s.flights, k)
			f.res = qr
			close(f.done)
		}
		s.mu.Unlock()
	}
	if results == nil {
		// The campaign could not start (an undecodable checkpoint entry —
		// the journal names the remedy). Serve the whole slice degraded.
		for _, k := range leaders {
			finish(k, QueryResult{Key: k, Degraded: &Degraded{Kind: "error", Error: runErr.Error()}})
		}
	}
	for _, res := range results {
		var qr QueryResult
		if res.Attempts > 1 {
			tally.Retries += uint64(res.Attempts - 1)
		}
		if res.Failure == nil {
			qr = QueryResult{Key: res.Key, Answer: res.Value}
			if res.FromCheckpoint {
				// Another batch completed it between our journal lookup
				// and the farm's: still a cache hit, not an execution.
				tally.CacheHits++
			} else {
				tally.Executed++
			}
			s.breakers.onSuccess(res.Key)
		} else {
			f := res.Failure
			tally.Degraded++
			d := &Degraded{Kind: f.Kind.String(), Attempts: f.Attempts, BundlePath: f.BundlePath}
			switch f.Kind {
			case farm.KindPanic:
				d.Error = f.Panic
				if f.Err != "" {
					d.Error += " (" + f.Err + ")"
				}
				tally.Panics++
				s.breakers.onHardFailure(res.Key)
			case farm.KindDeadline:
				d.Error = f.Err
				tally.Deadlines++
				s.breakers.onHardFailure(res.Key)
			case farm.KindSkipped:
				d.Error = "batch cancelled before this point ran"
				s.breakers.onProbeAbandoned(res.Key)
			default:
				d.Error = f.Err
				// Plain errors are the farm's domain (already retried);
				// they do not move the circuit, but a claimed half-open
				// probe slot must be returned.
				s.breakers.onProbeAbandoned(res.Key)
			}
			qr = QueryResult{Key: res.Key, Degraded: d}
		}
		finish(res.Key, qr)
	}

	s.mu.Lock()
	s.queued -= len(leaders)
	s.ctr.Executed += tally.Executed
	s.ctr.CacheHits += tally.CacheHits
	s.ctr.Degraded += tally.Degraded
	s.ctr.Panics += tally.Panics
	s.ctr.Deadlines += tally.Deadlines
	s.ctr.Retries += tally.Retries
	s.mu.Unlock()
}

// drainGrace bounds how long a hard-stopped Drain waits for cancelled
// batches to come home before closing the journal out from under them. A
// wedged attempt is only abandoned by the farm's watchdog at its own
// PointDeadline; waiting that out on SIGTERM would defeat the drain
// deadline, and closing early is safe — every completed point was fsynced
// when it was recorded, and a straggler's late Record fails cleanly
// against the closed journal.
const drainGrace = time.Second

// Drain gracefully stops the server: intake closes (readyz flips to 503,
// new batches get 503), in-flight batches finish — every point completed
// before ctx expires is journaled — and the journal is flushed and closed.
// If ctx expires first, the hard-stop cancels the in-flight farm runs
// (prompt, thanks to the farm's interruptible backoff), waits drainGrace
// for them to settle, and returns ctx.Err; completed prefixes are already
// durable either way, because the journal fsyncs every record as it lands.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.hardCancel()
		t := time.NewTimer(drainGrace)
		select {
		case <-done:
			t.Stop()
		case <-t.C:
		}
		err = ctx.Err()
	}
	if cerr := s.journal.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}
