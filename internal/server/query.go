package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"haswellep/internal/coherence"
	"haswellep/internal/experiments"
	"haswellep/internal/machine"
	"haswellep/internal/topology"
)

// Query is the wire form of one what-if question. The decoder is strict:
// unknown fields, impossible geometries, and out-of-range workloads all
// produce a structured 400 (*QueryError) — never a panic — which the fuzz
// target FuzzDecodeQuery holds the whole path to.
type Query struct {
	// Kind is "latency", "bandwidth", "placement", or "chaos".
	Kind string `json:"kind"`
	// Mode is the snoop mode: "source", "home", or "cod". Chaos queries
	// may omit it (they run the paper's test system: cod, 2 sockets,
	// 12-core die).
	Mode string `json:"mode,omitempty"`
	// Protocol is "mesif" (default), "mesi", or "moesi".
	Protocol string `json:"protocol,omitempty"`
	// Sockets is 1 or 2 (default 2).
	Sockets int `json:"sockets,omitempty"`
	// Die is the cores-per-die variant: 8 or 12 (default 12).
	Die int `json:"die,omitempty"`
	// FromNode and ToNode are NUMA node indices.
	FromNode int `json:"from_node,omitempty"`
	ToNode   int `json:"to_node,omitempty"`
	// SizeBytes is the working-set size (default 16 MiB).
	SizeBytes int64 `json:"size_bytes,omitempty"`
	// Cores is the concurrent reader count for bandwidth queries.
	Cores int `json:"cores,omitempty"`
	// Seed and Rate select a chaos query's fault plan.
	Seed int64   `json:"seed,omitempty"`
	Rate float64 `json:"rate,omitempty"`
	// Label optionally partitions the memo key ([A-Za-z0-9._-], ≤32).
	Label string `json:"label,omitempty"`
}

// Request is the POST /v1/whatif envelope: a batch of queries plus an
// optional client deadline for the whole batch.
type Request struct {
	Queries []Query `json:"queries"`
	// DeadlineMS bounds the batch: points still unfinished when it
	// expires come back degraded instead of blocking the client. 0 means
	// no client deadline (the server's per-point deadline still applies).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// QueryError is a structured decode/validation failure; the server renders
// it as the 400 response body.
type QueryError struct {
	// Index is the offending query's position in the batch, or -1 when
	// the envelope itself is malformed.
	Index  int    `json:"query_index"`
	Detail string `json:"error"`
}

func (e *QueryError) Error() string {
	if e.Index < 0 {
		return e.Detail
	}
	return fmt.Sprintf("query %d: %s", e.Index, e.Detail)
}

// envelopeErr wraps an envelope-level failure.
func envelopeErr(format string, args ...any) *QueryError {
	return &QueryError{Index: -1, Detail: fmt.Sprintf(format, args...)}
}

// parseMode maps the wire snoop-mode name.
func parseMode(s string) (machine.SnoopMode, error) {
	switch s {
	case "source":
		return machine.SourceSnoop, nil
	case "home":
		return machine.HomeSnoop, nil
	case "cod":
		return machine.COD, nil
	default:
		return 0, fmt.Errorf("unknown snoop mode %q (choose source, home, or cod)", s)
	}
}

// Spec converts one wire query into its canonical what-if spec, applying
// wire-level defaults (die 12) before the kind-level canonicalization.
func (q Query) Spec() (experiments.WhatIfSpec, error) {
	var zero experiments.WhatIfSpec
	s := experiments.WhatIfSpec{
		Kind:      experiments.WhatIfKind(q.Kind),
		Sockets:   q.Sockets,
		From:      q.FromNode,
		To:        q.ToNode,
		SizeBytes: q.SizeBytes,
		Cores:     q.Cores,
		Seed:      q.Seed,
		Rate:      q.Rate,
		Label:     q.Label,
	}
	if _, err := coherence.Get(coherence.ID(q.Protocol)); err != nil {
		return zero, err
	}
	s.Protocol = coherence.ID(q.Protocol)
	switch q.Die {
	case 0, 12:
		s.Die = topology.Die12
	case 8:
		s.Die = topology.Die8
	default:
		return zero, fmt.Errorf("unknown die variant %d (choose 8 or 12)", q.Die)
	}
	if q.Mode != "" {
		m, err := parseMode(q.Mode)
		if err != nil {
			return zero, err
		}
		s.Mode = m
	} else if s.Kind != experiments.WhatIfChaos {
		return zero, errors.New("mode is required (source, home, or cod)")
	}
	return s.Canonical()
}

// DecodeBatch reads and validates one request body. limit bounds the body
// size and maxBatch the query count; both defend the bounded-queue promise
// (a request may not smuggle in unbounded work). Every returned spec is
// canonical and validated.
func DecodeBatch(r io.Reader, limit int64, maxBatch int) ([]experiments.WhatIfSpec, Request, *QueryError) {
	var req Request
	dec := json.NewDecoder(io.LimitReader(r, limit+1))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, req, envelopeErr("decoding request: %v (body limit %d bytes)", err, limit)
	}
	// A second value means trailing garbage (or a body past the limit cut
	// mid-token, which the first Decode already caught).
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, req, envelopeErr("trailing data after the request object")
	}
	if len(req.Queries) == 0 {
		return nil, req, envelopeErr("empty batch: provide at least one query")
	}
	if len(req.Queries) > maxBatch {
		return nil, req, envelopeErr("batch of %d queries exceeds the %d-query limit", len(req.Queries), maxBatch)
	}
	if req.DeadlineMS < 0 {
		return nil, req, envelopeErr("deadline_ms must be non-negative")
	}
	specs := make([]experiments.WhatIfSpec, len(req.Queries))
	for i, q := range req.Queries {
		s, err := q.Spec()
		if err != nil {
			return nil, req, &QueryError{Index: i, Detail: err.Error()}
		}
		specs[i] = s
	}
	return specs, req, nil
}
