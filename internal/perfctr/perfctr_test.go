package perfctr

import (
	"strings"
	"testing"

	"haswellep/internal/machine"
	"haswellep/internal/mesif"
	"haswellep/internal/placement"
	"haswellep/internal/topology"
	"haswellep/internal/units"
)

func setup(t *testing.T, mode machine.SnoopMode) (*mesif.Engine, *Monitor, *placement.Placer) {
	t.Helper()
	e := mesif.New(machine.MustNew(machine.TestSystem(mode)))
	return e, New(e), placement.New(e)
}

func TestL1HitCounting(t *testing.T) {
	e, m, p := setup(t, machine.SourceSnoop)
	r, _ := e.M.AllocOnNode(0, 8*units.KiB)
	p.Exclusive(0, r)
	m.Reset()
	for _, l := range r.Lines() {
		m.Observe(e.Read(0, l))
	}
	c := m.ReadCounters()
	if c[LoadsRetired] != 128 || c[L1Hit] != 128 {
		t.Errorf("loads=%d l1=%d, want 128/128", c[LoadsRetired], c[L1Hit])
	}
	if c[RemoteDRAM] != 0 || c[LocalDRAM] != 0 {
		t.Error("L1-resident reads must not touch DRAM")
	}
}

func TestXSNPEvents(t *testing.T) {
	e, m, p := setup(t, machine.SourceSnoop)
	// Modified in core 1's L1 -> XSNP_HITM.
	r1, _ := e.M.AllocOnNode(0, 4*units.KiB)
	p.Modified(1, r1)
	m.Reset()
	for _, l := range r1.Lines() {
		m.Observe(e.Read(0, l))
	}
	c := m.ReadCounters()
	if c[XSNPHitM] != uint64(len(r1.Lines())) {
		t.Errorf("XSNP_HITM = %d, want %d", c[XSNPHitM], len(r1.Lines()))
	}

	// Exclusive with stale bit -> XSNP_HIT.
	e.M.Reset()
	r2, _ := e.M.AllocOnNode(0, 2*units.MiB)
	p.Exclusive(1, r2)
	m.Reset()
	snooped := 0
	for i, l := range r2.Lines() {
		if i >= 1024 {
			break
		}
		acc := e.Read(0, l)
		m.Observe(acc)
		if acc.Source == mesif.SrcL3CoreSnoop {
			snooped++
		}
	}
	c = m.ReadCounters()
	if c[XSNPHit] != uint64(snooped) || snooped == 0 {
		t.Errorf("XSNP_HIT = %d, observed %d", c[XSNPHit], snooped)
	}
}

// TestRemoteEvents reproduces the paper's footnote-6/8 usage: the counters
// distinguish remote-DRAM from remote-forward services.
func TestRemoteEvents(t *testing.T) {
	e, m, p := setup(t, machine.SourceSnoop)
	// Remote forward: modified in the other socket's L3.
	r, _ := e.M.AllocOnNode(1, 256*units.KiB)
	c12 := topology.CoreID(12)
	p.Modified(c12, r)
	p.EvictPrivate(c12, r)
	m.Reset()
	for _, l := range r.Lines() {
		m.Observe(e.Read(0, l))
	}
	c := m.ReadCounters()
	if c[RemoteFwd] != uint64(len(r.Lines())) {
		t.Errorf("REMOTE_FWD = %d, want %d", c[RemoteFwd], len(r.Lines()))
	}

	// Remote DRAM: flushed remote buffer.
	e.M.Reset()
	r2, _ := e.M.AllocOnNode(1, 256*units.KiB)
	p.Modified(c12, r2)
	p.FlushAll(c12, r2)
	m.Reset()
	for _, l := range r2.Lines() {
		m.Observe(e.Read(0, l))
	}
	c = m.ReadCounters()
	if c[RemoteDRAM] != uint64(len(r2.Lines())) {
		t.Errorf("REMOTE_DRAM = %d, want %d", c[RemoteDRAM], len(r2.Lines()))
	}
	if c[LocalDRAM] != 0 {
		t.Errorf("LOCAL_DRAM = %d, want 0", c[LocalDRAM])
	}
}

func TestDirectoryEvents(t *testing.T) {
	e, m, p := setup(t, machine.COD)
	r, _ := e.M.AllocOnNode(1, 64*units.KiB)
	p.Shared(r, 6, 12)
	m.Reset()
	for _, l := range r.Lines() {
		m.Observe(e.Read(0, l))
	}
	c := m.ReadCounters()
	if c[DirCacheHits] == 0 {
		t.Error("shared small set must hit the directory cache")
	}
	if c[SnoopsSent] == 0 {
		t.Error("COD misses must snoop the home node")
	}
}

func TestBroadcastEvent(t *testing.T) {
	e, m, p := setup(t, machine.COD)
	r, _ := e.M.AllocOnNode(1, 64*units.KiB)
	p.Shared(r, 6, 12)
	e.EvictCached(r)
	e.EvictDirectoryCache(r)
	m.Reset()
	for _, l := range r.Lines() {
		m.Observe(e.Read(0, l))
	}
	c := m.ReadCounters()
	if c[DirBroadcasts] != uint64(len(r.Lines())) {
		t.Errorf("broadcasts = %d, want %d", c[DirBroadcasts], len(r.Lines()))
	}
}

func TestResetAndString(t *testing.T) {
	e, m, p := setup(t, machine.SourceSnoop)
	r, _ := e.M.AllocOnNode(0, 4*units.KiB)
	p.Exclusive(0, r)
	for _, l := range r.Lines() {
		m.Observe(e.Read(0, l))
	}
	m.Reset()
	c := m.ReadCounters()
	for ev, v := range c {
		if v != 0 {
			t.Errorf("%s = %d after reset", ev, v)
		}
	}
	p.Modified(0, r)
	c = m.ReadCounters()
	out := c.String()
	if !strings.Contains(out, string(StoresRetired)) {
		t.Errorf("String misses stores: %q", out)
	}
	if c.Rate(StoresRetired, LoadsRetired) != 0 {
		// No loads since reset: rate guards the zero denominator.
		t.Error("Rate must guard zero denominators")
	}
}

func TestAllEventsComplete(t *testing.T) {
	evs := AllEvents()
	if len(evs) != 14 {
		t.Fatalf("event list = %d", len(evs))
	}
	seen := map[Event]bool{}
	for _, ev := range evs {
		if seen[ev] {
			t.Fatalf("duplicate event %s", ev)
		}
		seen[ev] = true
	}
	// Every listed event appears in a reading.
	e, m, p := setup(t, machine.COD)
	r, _ := e.M.AllocOnNode(0, 4*units.KiB)
	p.Exclusive(0, r)
	c := m.ReadCounters()
	for _, ev := range evs {
		if _, ok := c[ev]; !ok {
			t.Errorf("event %s missing from reading", ev)
		}
	}
	if m.Engine() != e {
		t.Error("Engine accessor wrong")
	}
}
