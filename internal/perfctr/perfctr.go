// Package perfctr emulates the performance-counter view the paper uses to
// reverse-engineer the machine (footnotes 6 and 8: the
// MEM_LOAD_UOPS_L3_MISS_RETIRED event group, plus uncore counters for
// snoop traffic and directory activity).
//
// A Monitor wraps a protocol engine, samples its statistics, and exposes
// named events with the semantics of the real counters, so experiments can
// be cross-checked the same way the paper cross-checks its latency curves
// against counter readings (Section VI-C / Figure 7).
//
//hsw:tier engine
package perfctr

import (
	"fmt"
	"sort"
	"strings"

	"haswellep/internal/mesif"
)

// Event names one countable hardware event.
type Event string

// The emulated event set. The MEM_LOAD_UOPS names follow the Intel SDM
// spelling the paper cites; the UNC_ events summarize uncore activity.
const (
	// LoadsRetired counts all demand loads.
	LoadsRetired Event = "MEM_LOAD_UOPS_RETIRED.ALL"
	// L1Hit / L2Hit / L3Hit count loads served by each local level.
	L1Hit Event = "MEM_LOAD_UOPS_RETIRED.L1_HIT"
	L2Hit Event = "MEM_LOAD_UOPS_RETIRED.L2_HIT"
	L3Hit Event = "MEM_LOAD_UOPS_RETIRED.L3_HIT"
	// XSNPHitM counts L3 hits that required a cross-core snoop which hit
	// modified data in a sibling core (the 53/49 ns forwards).
	XSNPHitM Event = "MEM_LOAD_UOPS_L3_HIT_RETIRED.XSNP_HITM"
	// XSNPHit counts L3 hits with a clean cross-core snoop (44.4 ns).
	XSNPHit Event = "MEM_LOAD_UOPS_L3_HIT_RETIRED.XSNP_HIT"
	// LocalDRAM counts L3 misses served by the local node's memory.
	LocalDRAM Event = "MEM_LOAD_UOPS_L3_MISS_RETIRED.LOCAL_DRAM"
	// RemoteDRAM counts L3 misses served by another node's memory
	// (footnote 6 of the paper).
	RemoteDRAM Event = "MEM_LOAD_UOPS_L3_MISS_RETIRED.REMOTE_DRAM"
	// RemoteFwd counts L3 misses served by a remote cache forward
	// (footnote 8).
	RemoteFwd Event = "MEM_LOAD_UOPS_L3_MISS_RETIRED.REMOTE_FWD"
	// SnoopsSent counts snoop messages on the fabric.
	SnoopsSent Event = "UNC_SNOOPS_SENT.ALL"
	// SnoopsQPI counts snoops that crossed a QPI link.
	SnoopsQPI Event = "UNC_SNOOPS_SENT.QPI"
	// DirCacheHits counts HitME directory cache hits.
	DirCacheHits Event = "UNC_H_DIR_CACHE.HIT"
	// DirBroadcasts counts snoop-all broadcasts issued by home agents.
	DirBroadcasts Event = "UNC_H_SNP_BROADCAST.ALL"
	// StoresRetired counts stores.
	StoresRetired Event = "MEM_UOPS_RETIRED.ALL_STORES"
)

// AllEvents lists every emulated event in canonical order.
func AllEvents() []Event {
	return []Event{
		LoadsRetired, L1Hit, L2Hit, L3Hit, XSNPHitM, XSNPHit,
		LocalDRAM, RemoteDRAM, RemoteFwd,
		SnoopsSent, SnoopsQPI, DirCacheHits, DirBroadcasts,
		StoresRetired,
	}
}

// Counts is one sample of all events.
type Counts map[Event]uint64

// Monitor samples an engine's statistics into counter readings. Engine
// statistics cover everything except the local/remote DRAM split, which
// needs the per-access flag: route accesses through Read/Write on the
// monitor (or call Observe) to capture it.
type Monitor struct {
	e    *mesif.Engine
	base mesif.Stats
	// Forward counters fed by Observe.
	remoteDRAM uint64
}

// New attaches a monitor to an engine and starts counting from zero.
func New(e *mesif.Engine) *Monitor {
	m := &Monitor{e: e}
	m.Reset()
	return m
}

// Engine returns the monitored engine.
func (m *Monitor) Engine() *mesif.Engine { return m.e }

// Reset zeroes the monitor (subsequent readings are deltas from here).
func (m *Monitor) Reset() {
	m.base = m.e.Stats()
	m.remoteDRAM = 0
}

// Observe books an access's per-access flags (remote-DRAM attribution).
func (m *Monitor) Observe(acc mesif.Access) {
	if acc.RemoteDRAM {
		m.remoteDRAM++
	}
}

// ReadCounters computes the counter values accumulated since the last
// Reset.
func (m *Monitor) ReadCounters() Counts {
	cur := m.e.Stats()
	d := func(get func(mesif.Stats) uint64) uint64 {
		return get(cur) - get(m.base)
	}
	src := func(s mesif.Source) uint64 {
		return cur.BySource[s] - m.base.BySource[s]
	}
	dramServed := src(mesif.SrcMemory) + src(mesif.SrcMemoryForward)
	local := dramServed
	if m.remoteDRAM < local {
		local -= m.remoteDRAM
	} else {
		local = 0
	}
	return Counts{
		LoadsRetired:  d(func(s mesif.Stats) uint64 { return s.Reads }),
		StoresRetired: d(func(s mesif.Stats) uint64 { return s.Writes }),
		L1Hit:         src(mesif.SrcL1),
		L2Hit:         src(mesif.SrcL2),
		L3Hit:         src(mesif.SrcL3) + src(mesif.SrcL3CoreSnoop) + src(mesif.SrcCoreForward),
		XSNPHitM:      src(mesif.SrcCoreForward),
		XSNPHit:       src(mesif.SrcL3CoreSnoop),
		LocalDRAM:     local,
		RemoteDRAM:    m.remoteDRAM,
		RemoteFwd:     src(mesif.SrcPeerL3) + src(mesif.SrcPeerL3CoreSnoop) + src(mesif.SrcPeerCore),
		SnoopsSent:    d(func(s mesif.Stats) uint64 { return s.SnoopsSent }),
		SnoopsQPI:     d(func(s mesif.Stats) uint64 { return s.SnoopsQPI }),
		DirCacheHits:  d(func(s mesif.Stats) uint64 { return s.DirHits }),
		DirBroadcasts: d(func(s mesif.Stats) uint64 { return s.Broadcasts }),
	}
}

// String renders a reading like a perf-stat report, skipping zero counters.
func (c Counts) String() string {
	var b strings.Builder
	keys := make([]string, 0, len(c))
	for k := range c {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	for _, k := range keys {
		if v := c[Event(k)]; v != 0 {
			fmt.Fprintf(&b, "%14d  %s\n", v, k)
		}
	}
	return b.String()
}

// Rate returns event per reference-event ratios (e.g. remote forwards per
// load), guarding against zero denominators.
func (c Counts) Rate(ev, per Event) float64 {
	if c[per] == 0 {
		return 0
	}
	return float64(c[ev]) / float64(c[per])
}
