package apps

import (
	"testing"

	"haswellep/internal/machine"
)

func TestProfilesValidate(t *testing.T) {
	ps := Profiles()
	if len(ps) != 27 {
		t.Fatalf("profiles = %d, want 14 OMP + 13 MPI", len(ps))
	}
	omp, mpi := 0, 0
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Error(err)
		}
		switch p.Suite {
		case OMP2012:
			omp++
		case MPI2007:
			mpi++
		}
	}
	if omp != 14 || mpi != 13 {
		t.Errorf("suite split = %d OMP, %d MPI", omp, mpi)
	}
}

func TestProfileValidateCatchesBadWeights(t *testing.T) {
	bad := Profile{Name: "x", Compute: 0.5, Weights: map[Metric]float64{MLocalLat: 0.1}}
	if bad.Validate() == nil {
		t.Error("under-weighted profile accepted")
	}
	neg := Profile{Name: "y", Compute: 1.2, Weights: map[Metric]float64{MLocalLat: -0.2}}
	if neg.Validate() == nil {
		t.Error("negative weight accepted")
	}
}

func TestRelativeRuntimeBaseline(t *testing.T) {
	var base Characterization
	for i := range base.Values {
		base.Values[i] = 100
	}
	for _, p := range Profiles() {
		if rt := p.RelativeRuntime(base, base); rt < 0.999 || rt > 1.001 {
			t.Errorf("%s baseline runtime = %v, want 1", p.Name, rt)
		}
	}
}

func TestRelativeRuntimeDirections(t *testing.T) {
	var base, slow Characterization
	for i := range base.Values {
		base.Values[i] = 100
		slow.Values[i] = 100
	}
	// Doubling a latency metric slows every app with that weight.
	slow.Values[MLocalLat] = 200
	p := Profile{Name: "t", Compute: 0.5, Weights: map[Metric]float64{MLocalLat: 0.5}}
	if rt := p.RelativeRuntime(base, slow); rt != 1.5 {
		t.Errorf("latency doubling runtime = %v, want 1.5", rt)
	}
	// Halving a bandwidth metric also slows (inverse metric).
	slow = base
	slow.Values[MLocalBW] = 50
	p = Profile{Name: "t", Compute: 0.5, Weights: map[Metric]float64{MLocalBW: 0.5}}
	if rt := p.RelativeRuntime(base, slow); rt != 1.5 {
		t.Errorf("bandwidth halving runtime = %v, want 1.5", rt)
	}
}

func TestMetricStrings(t *testing.T) {
	for m := Metric(0); m < numMetrics; m++ {
		if m.String() == "" {
			t.Errorf("metric %d unnamed", m)
		}
	}
	if Metric(99).String() != "Metric(99)" {
		t.Error("unknown metric string")
	}
	if OMP2012.String() == MPI2007.String() {
		t.Error("suite names must differ")
	}
}

func TestSortedNames(t *testing.T) {
	names := SortedNames(Profiles(), OMP2012)
	if len(names) != 14 {
		t.Fatalf("OMP names = %d", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Fatal("names not sorted")
		}
	}
}

// TestCharacterizeShape verifies the mode-to-mode relations the paper's
// Figure 10 discussion rests on.
func TestCharacterizeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization is slow")
	}
	def := Characterize(machine.SourceSnoop)
	hs := Characterize(machine.HomeSnoop)
	cod := Characterize(machine.COD)

	if hs.Values[MLocalLat] <= def.Values[MLocalLat] {
		t.Error("home snoop must raise local memory latency")
	}
	if hs.Values[MRemoteBW] <= def.Values[MRemoteBW] {
		t.Error("home snoop must raise inter-socket bandwidth")
	}
	if cod.Values[MLocalLat] >= def.Values[MLocalLat] {
		t.Error("COD must lower local memory latency")
	}
	if cod.Values[MSharedLat] <= 1.4*def.Values[MSharedLat] {
		t.Errorf("COD worst-case shared latency must blow up: %v vs %v",
			cod.Values[MSharedLat], def.Values[MSharedLat])
	}
	if cod.Values[ML3Lat] >= def.Values[ML3Lat] {
		t.Error("COD must lower local L3 latency")
	}
}
