// Package apps models the application benchmarks of Section VIII (SPEC
// OMP2012 and SPEC MPI2007) to reproduce Figure 10's coherence-protocol
// sensitivity study.
//
// The real suites are proprietary; per the reproduction's substitution rule
// each application is represented by a synthetic memory-behavior profile: a
// compute fraction that is insensitive to the memory system plus weights on
// the micro-characteristics the paper itself uses to explain the results —
// local memory latency and bandwidth, inter-socket bandwidth, and worst-case
// shared-line transfer latency. The profile weights are fixed constants
// derived from the applications' published characterizations; the
// per-configuration micro-characteristics are MEASURED on the simulated
// machine, so the config-to-config deltas of Figure 10 are genuinely
// computed rather than transcribed.
//
//hsw:tier engine
package apps

import (
	"fmt"
	"sort"

	"haswellep/internal/bench"
	"haswellep/internal/bwmodel"
	"haswellep/internal/machine"
	"haswellep/internal/mesif"
	"haswellep/internal/placement"
	"haswellep/internal/topology"
	"haswellep/internal/units"
)

// Suite identifies the benchmark suite of an application.
type Suite int

// The two suites of Section VIII.
const (
	OMP2012 Suite = iota
	MPI2007
)

// String names the suite.
func (s Suite) String() string {
	if s == MPI2007 {
		return "SPEC MPI2007"
	}
	return "SPEC OMP2012"
}

// Metric keys the machine characterization exposes to the profiles.
type Metric int

// Characterization metrics. Latency metrics enter runtime proportionally;
// bandwidth metrics enter inversely (less bandwidth -> more runtime).
const (
	// MLocalLat is the local main memory latency.
	MLocalLat Metric = iota
	// MLocalBW is the saturated local memory read bandwidth of the
	// threads' socket (or COD node, scaled to the socket).
	MLocalBW
	// MLocalWriteBW is the saturated local memory write bandwidth.
	MLocalWriteBW
	// MRemoteBW is the saturated inter-socket read bandwidth.
	MRemoteBW
	// MRemoteLat is the remote cache access latency.
	MRemoteLat
	// MSharedLat is the worst-case latency of reading shared cache lines
	// whose forward copy and home are in different nodes — the COD
	// penalty path of Table IV.
	MSharedLat
	// ML3Lat is the local L3 latency.
	ML3Lat
	numMetrics
)

// String names the metric.
func (m Metric) String() string {
	switch m {
	case MLocalLat:
		return "local memory latency"
	case MLocalBW:
		return "local memory bandwidth"
	case MLocalWriteBW:
		return "local memory write bandwidth"
	case MRemoteBW:
		return "inter-socket bandwidth"
	case MRemoteLat:
		return "remote cache latency"
	case MSharedLat:
		return "worst-case shared-line latency"
	case ML3Lat:
		return "L3 latency"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// inverse reports whether the metric improves runtime when it grows.
func (m Metric) inverse() bool {
	switch m {
	case MLocalBW, MLocalWriteBW, MRemoteBW:
		return true
	default:
		return false
	}
}

// Characterization holds one configuration's measured metrics.
type Characterization struct {
	Mode   machine.SnoopMode
	Values [numMetrics]float64
}

// Characterize measures the metrics on a freshly simulated machine in the
// given mode. Every value comes out of the protocol engine and the
// bandwidth model — none is a transcribed paper number.
func Characterize(mode machine.SnoopMode) Characterization {
	m := machine.MustNew(machine.TestSystem(mode))
	e := mesif.New(m)
	p := placement.New(e)
	caps := bwmodel.CapsFor(m.Cfg)
	conc := bwmodel.ConcurrencyFor(mode)
	ch := Characterization{Mode: mode}

	const memSize = 16 * units.MiB
	const l3Size = 4 * units.MiB

	// Local memory latency and bandwidth (first core of node0).
	r := m.MustAlloc(0, memSize)
	p.Modified(0, r)
	p.FlushAll(0, r)
	ch.Values[MLocalLat] = bench.Latency(e, 0, r).MeanNs

	m.Reset()
	p.Modified(0, r)
	p.FlushAll(0, r)
	single := bwmodel.ReadStream(e, 0, r, bwmodel.AVX256, conc).GBps
	localCap := caps.MemReadPerSocket
	nLocal := 12
	if mode == machine.COD {
		// Per-node capacity, both nodes of the socket active.
		localCap = 2 * caps.MemReadPerNode
		nLocal = 12
	}
	ch.Values[MLocalBW] = bwmodel.Aggregate(nLocal, single, localCap, 1)

	m.Reset()
	wr := m.MustAlloc(0, memSize)
	wsingle := bwmodel.WriteStream(e, 0, wr, bwmodel.DefaultWriteConcurrency).GBps
	ch.Values[MLocalWriteBW] = bwmodel.Aggregate(12, wsingle, 2*caps.SaturatedWriteCap(6), 1)

	// Inter-socket bandwidth: all cores of socket0 reading socket1.
	m.Reset()
	remoteNode := 1
	if mode == machine.COD {
		remoteNode = 2
	}
	rr := m.MustAlloc(machineNode(m, remoteNode), memSize)
	rp := m.Topo.CoresOfNode(m.Topo.NodeOfAgent(m.HomeAgentOf(rr.Base.Line())))[0]
	p.Modified(rp, rr)
	p.FlushAll(rp, rr)
	rsingle := bwmodel.ReadStream(e, 0, rr, bwmodel.AVX256, conc).GBps
	qpiCap := caps.QPIReadCap(mode)
	if mode == machine.COD {
		qpiCap = caps.CODInterNodeCap(2)
	}
	ch.Values[MRemoteBW] = bwmodel.Aggregate(12, rsingle, qpiCap, 1)

	// Remote cache latency (state exclusive, as Table III).
	m.Reset()
	re := m.MustAlloc(machineNode(m, remoteNode), l3Size)
	rc := m.Topo.CoresOfNode(m.Topo.NodeOfAgent(m.HomeAgentOf(re.Base.Line())))[0]
	p.Exclusive(rc, re)
	ch.Values[MRemoteLat] = bench.Latency(e, 0, re).MeanNs

	// Worst-case shared-line latency: forward copy and home in different
	// (remote) nodes. Without COD this degenerates to the plain remote
	// shared-line forward.
	m.Reset()
	homeNode, fwdNode := 1, 1
	if mode == machine.COD {
		homeNode, fwdNode = 2, 1
	}
	sh := m.MustAlloc(machineNode(m, homeNode), l3Size)
	hc := m.Topo.CoresOfNode(m.Topo.NodeOfAgent(m.HomeAgentOf(sh.Base.Line())))[0]
	fc := m.Topo.CoresOfNode(machineNode(m, fwdNode))[0]
	if fc == hc {
		fc = m.Topo.CoresOfNode(machineNode(m, fwdNode))[1]
	}
	p.Shared(sh, hc, fc)
	e.EvictDirectoryCache(sh)
	ch.Values[MSharedLat] = bench.Latency(e, 0, sh).MeanNs

	// Local L3 latency.
	m.Reset()
	l3 := m.MustAlloc(0, l3Size)
	p.Exclusive(0, l3)
	ch.Values[ML3Lat] = bench.Latency(e, 0, l3).MeanNs

	return ch
}

// machineNode clamps a desired node index to the machine's node count (the
// non-COD machine has two nodes).
func machineNode(m *machine.Machine, want int) topology.NodeID {
	if want >= m.Topo.Nodes() {
		want = m.Topo.Nodes() - 1
	}
	return topology.NodeID(want)
}

// Profile is one application's synthetic memory-behavior model.
type Profile struct {
	Name  string
	Suite Suite
	// Compute is the runtime fraction insensitive to the memory system.
	Compute float64
	// Weights maps metrics to runtime fractions in the baseline
	// configuration. Compute plus all weights sums to 1.
	Weights map[Metric]float64
}

// RelativeRuntime computes the application's runtime in a configuration
// relative to the baseline characterization.
func (p Profile) RelativeRuntime(base, cfg Characterization) float64 {
	rt := p.Compute
	for _, m := range p.sortedMetrics() {
		w := p.Weights[m]
		ratio := cfg.Values[m] / base.Values[m]
		if m.inverse() {
			ratio = base.Values[m] / cfg.Values[m]
		}
		rt += w * ratio
	}
	return rt
}

// sortedMetrics returns the profile's weighted metrics in ascending order.
// The runtime estimate is a float sum, and float addition is not
// associative, so the accumulation order must be pinned for experiment
// tables to replay bit-identically.
func (p Profile) sortedMetrics() []Metric {
	ms := make([]Metric, 0, len(p.Weights))
	//hsw:unordered key collection; order restored by the sort below
	for m := range p.Weights {
		ms = append(ms, m)
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
	return ms
}

// Validate checks that the profile's fractions are sane.
func (p Profile) Validate() error {
	sum := p.Compute
	for _, m := range p.sortedMetrics() {
		w := p.Weights[m]
		if w < 0 {
			return fmt.Errorf("apps: %s has negative weight for %v", p.Name, m)
		}
		sum += w
	}
	if sum < 0.99 || sum > 1.01 {
		return fmt.Errorf("apps: %s weights sum to %.3f, want 1", p.Name, sum)
	}
	return nil
}

// SortedNames lists the profile names of a suite in ascending order.
func SortedNames(profiles []Profile, suite Suite) []string {
	var names []string
	for _, p := range profiles {
		if p.Suite == suite {
			names = append(names, p.Name)
		}
	}
	sort.Strings(names)
	return names
}
