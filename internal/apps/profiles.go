package apps

// Profiles returns the synthetic memory-behavior models of the 14 SPEC
// OMP2012 and 13 SPEC MPI2007 applications.
//
// The weights encode the qualitative characterizations the paper's Section
// VIII relies on (and the suites' public documentation): OpenMP codes share
// one address space across both sockets, so they carry inter-socket
// bandwidth and shared-line weights; 362.fma3d and 371.applu331 are the two
// codes the paper singles out as sensitive to cross-socket communication
// (they gain ~5% from home snooping's higher QPI bandwidth and lose — up to
// 23% for applu331 — to COD's worst-case shared-line latencies). The MPI
// codes partition their data and primarily stress local memory, which is
// why the paper finds COD mostly helps and home snooping mildly hurts them.
func Profiles() []Profile {
	w := func(pairs ...interface{}) map[Metric]float64 {
		m := make(map[Metric]float64, len(pairs)/2)
		for i := 0; i < len(pairs); i += 2 {
			m[pairs[i].(Metric)] = pairs[i+1].(float64)
		}
		return m
	}

	return []Profile{
		// ---- SPEC OMP2012 (shared memory, spans both sockets) ----
		// Molecular dynamics: compute bound, modest cache traffic.
		{"350.md", OMP2012, 0.88, w(MLocalLat, 0.04, MLocalBW, 0.03, ML3Lat, 0.03, MSharedLat, 0.02)},
		// Blast waves CFD: strongly memory-bandwidth bound.
		{"351.bwaves", OMP2012, 0.40, w(MLocalBW, 0.42, MLocalLat, 0.10, MRemoteBW, 0.04, MSharedLat, 0.04)},
		// Molecular modeling: cache friendly.
		{"352.nab", OMP2012, 0.82, w(ML3Lat, 0.08, MLocalLat, 0.05, MLocalBW, 0.03, MSharedLat, 0.02)},
		// NAS BT: bandwidth heavy with some neighbor sharing.
		{"357.bt331", OMP2012, 0.52, w(MLocalBW, 0.30, MLocalLat, 0.08, MSharedLat, 0.05, MRemoteBW, 0.05)},
		// Protein alignment (tasking): compute bound, fine-grained tasks.
		{"358.botsalgn", OMP2012, 0.90, w(ML3Lat, 0.04, MSharedLat, 0.03, MLocalLat, 0.03)},
		// Sparse LU (tasking): latency sensitive, irregular.
		{"359.botsspar", OMP2012, 0.77, w(MLocalLat, 0.10, ML3Lat, 0.06, MSharedLat, 0.04, MRemoteLat, 0.03)},
		// Lattice Boltzmann: streaming bandwidth bound.
		{"360.ilbdc", OMP2012, 0.38, w(MLocalBW, 0.44, MLocalWriteBW, 0.08, MLocalLat, 0.06, MSharedLat, 0.04)},
		// Crash simulation: heavy cross-socket neighbor exchange — one of
		// the paper's two outliers.
		{"362.fma3d", OMP2012, 0.48, w(MRemoteBW, 0.18, MSharedLat, 0.16, MLocalBW, 0.10, MLocalLat, 0.08)},
		// Shallow water: classic stream-bound stencil.
		{"363.swim", OMP2012, 0.30, w(MLocalBW, 0.46, MLocalWriteBW, 0.12, MLocalLat, 0.08, MSharedLat, 0.04)},
		// Image processing: compute bound.
		{"367.imagick", OMP2012, 0.93, w(ML3Lat, 0.03, MLocalBW, 0.02, MLocalLat, 0.02)},
		// Multigrid: bandwidth plus latency on coarse grids.
		{"370.mgrid331", OMP2012, 0.50, w(MLocalBW, 0.30, MLocalLat, 0.12, MSharedLat, 0.04, MRemoteBW, 0.04)},
		// SSOR solver with wavefront dependencies across threads: the
		// paper's worst COD case (+23%).
		{"371.applu331", OMP2012, 0.42, w(MSharedLat, 0.23, MRemoteBW, 0.17, MLocalBW, 0.10, MLocalLat, 0.08)},
		// Smith-Waterman: integer compute bound.
		{"372.smithwa", OMP2012, 0.92, w(ML3Lat, 0.04, MLocalLat, 0.02, MSharedLat, 0.02)},
		// KD-tree search (tasking): pointer chasing, latency sensitive.
		{"376.kdtree", OMP2012, 0.74, w(MLocalLat, 0.10, ML3Lat, 0.10, MSharedLat, 0.04, MRemoteLat, 0.02)},

		// ---- SPEC MPI2007 (message passing, NUMA-local data) ----
		{"104.milc", MPI2007, 0.50, w(MLocalBW, 0.34, MLocalLat, 0.12, MRemoteBW, 0.04)},
		{"107.leslie3d", MPI2007, 0.42, w(MLocalBW, 0.40, MLocalLat, 0.14, MRemoteBW, 0.04)},
		{"113.GemsFDTD", MPI2007, 0.45, w(MLocalBW, 0.38, MLocalLat, 0.13, MRemoteBW, 0.04)},
		{"115.fds4", MPI2007, 0.62, w(MLocalBW, 0.22, MLocalLat, 0.12, MRemoteBW, 0.04)},
		{"121.pop2", MPI2007, 0.60, w(MLocalBW, 0.24, MLocalLat, 0.12, MRemoteBW, 0.04)},
		{"122.tachyon", MPI2007, 0.92, w(MLocalLat, 0.04, ML3Lat, 0.03, MLocalBW, 0.01)},
		{"126.lammps", MPI2007, 0.74, w(MLocalBW, 0.12, MLocalLat, 0.10, MRemoteBW, 0.04)},
		{"127.wrf2", MPI2007, 0.58, w(MLocalBW, 0.26, MLocalLat, 0.12, MRemoteBW, 0.04)},
		{"128.GAPgeofem", MPI2007, 0.48, w(MLocalBW, 0.34, MLocalLat, 0.14, MRemoteBW, 0.04)},
		{"129.tera_tf", MPI2007, 0.66, w(MLocalBW, 0.20, MLocalLat, 0.10, MRemoteBW, 0.04)},
		{"130.socorro", MPI2007, 0.56, w(MLocalBW, 0.28, MLocalLat, 0.12, MRemoteBW, 0.04)},
		{"132.zeusmp2", MPI2007, 0.54, w(MLocalBW, 0.30, MLocalLat, 0.12, MRemoteBW, 0.04)},
		{"137.lu", MPI2007, 0.50, w(MLocalBW, 0.30, MLocalLat, 0.16, MRemoteBW, 0.04)},
	}
}
