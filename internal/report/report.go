// Package report renders the reproduction's tables and figure series: ASCII
// tables that mirror the paper's tables, CSV series for the figures, and
// paper-vs-measured comparisons used by EXPERIMENTS.md and the reproduction
// tests.
//
//hsw:tier harness
package report

import (
	"fmt"
	"sort"
	"strings"
)

// Table is a rendered-table model: a title, column headers, and rows of
// preformatted cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable builds a table with the given title and headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table in a fixed-width ASCII layout.
func (t *Table) String() string {
	ncols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > ncols {
			ncols = len(r)
		}
	}
	widths := make([]int, ncols)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i := 0; i < ncols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		total := 0
		for _, w := range widths {
			total += w
		}
		b.WriteString(strings.Repeat("-", total+2*(ncols-1)))
		b.WriteByte('\n')
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Point is one (x, y) sample of a figure series.
type Point struct {
	X float64 // dataset size in bytes, core count, etc.
	Y float64 // latency in ns or bandwidth in GB/s
}

// Series is one curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// Figure is a set of curves sharing axes, mirroring one paper figure.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// CSV renders the figure as a wide CSV: the union of x values in the first
// column, one column per series (empty cells where a series lacks a point).
func (f *Figure) CSV() string {
	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)

	var b strings.Builder
	b.WriteString(csvEscape(f.XLabel))
	for _, s := range f.Series {
		b.WriteByte(',')
		b.WriteString(csvEscape(s.Name))
	}
	b.WriteByte('\n')
	for _, x := range sorted {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range f.Series {
			b.WriteByte(',')
			for _, p := range s.Points {
				if p.X == x {
					fmt.Fprintf(&b, "%g", p.Y)
					break
				}
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Comparison is one paper-vs-measured check.
type Comparison struct {
	Label    string
	Paper    float64
	Measured float64
	Unit     string
}

// DeviationPct returns the relative deviation in percent.
func (c Comparison) DeviationPct() float64 {
	if c.Paper == 0 {
		return 0
	}
	return (c.Measured - c.Paper) / c.Paper * 100
}

// String renders the comparison as one aligned line.
func (c Comparison) String() string {
	return fmt.Sprintf("%-52s paper=%8.1f%-5s measured=%8.1f%-5s dev=%+6.1f%%",
		c.Label, c.Paper, c.Unit, c.Measured, c.Unit, c.DeviationPct())
}

// ComparisonSet renders a list of comparisons with a summary line.
func ComparisonSet(title string, cs []Comparison) string {
	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	worst := 0.0
	for _, c := range cs {
		b.WriteString(c.String())
		b.WriteByte('\n')
		if d := c.DeviationPct(); d > worst || -d > worst {
			if d < 0 {
				d = -d
			}
			worst = d
		}
	}
	fmt.Fprintf(&b, "worst deviation: %.1f%% over %d cells\n", worst, len(cs))
	return b.String()
}
