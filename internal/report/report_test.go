package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Title", "col1", "column2")
	tbl.AddRow("a", "b")
	tbl.AddRow("longer", "x")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Title" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "col1") || !strings.Contains(lines[1], "column2") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "---") {
		t.Errorf("separator = %q", lines[2])
	}
	if len(lines) != 5 {
		t.Errorf("line count = %d", len(lines))
	}
	// Columns align: both data rows start col 2 at the same offset.
	i3 := strings.Index(lines[3], "b")
	i4 := strings.Index(lines[4], "x")
	if i3 != i4 {
		t.Errorf("misaligned columns: %d vs %d", i3, i4)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tbl := NewTable("", "a", "b")
	tbl.AddRow("1", "2", "3") // extra cell beyond headers
	tbl.AddRow("4")
	out := tbl.String()
	if !strings.Contains(out, "3") || !strings.Contains(out, "4") {
		t.Errorf("ragged rows mishandled: %q", out)
	}
}

func TestFigureCSV(t *testing.T) {
	fig := &Figure{Title: "t", XLabel: "size", YLabel: "ns"}
	s1 := Series{Name: "a"}
	s1.Add(1, 10)
	s1.Add(2, 20)
	s2 := Series{Name: "b,c"} // needs escaping
	s2.Add(2, 99)
	fig.Series = []Series{s1, s2}
	csv := fig.CSV()
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if lines[0] != `size,a,"b,c"` {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "1,10," {
		t.Errorf("row 1 = %q", lines[1])
	}
	if lines[2] != "2,20,99" {
		t.Errorf("row 2 = %q", lines[2])
	}
}

func TestCSVEscape(t *testing.T) {
	if csvEscape("plain") != "plain" {
		t.Error("plain string escaped")
	}
	if csvEscape(`has "quote"`) != `"has ""quote"""` {
		t.Errorf("quote escaping = %q", csvEscape(`has "quote"`))
	}
}

func TestComparison(t *testing.T) {
	c := Comparison{Label: "x", Paper: 100, Measured: 105, Unit: "ns"}
	if d := c.DeviationPct(); d != 5 {
		t.Errorf("deviation = %v", d)
	}
	if !strings.Contains(c.String(), "+5.0%") {
		t.Errorf("String = %q", c.String())
	}
	zero := Comparison{Paper: 0, Measured: 5}
	if zero.DeviationPct() != 0 {
		t.Error("zero paper value must not divide")
	}
}

func TestComparisonSet(t *testing.T) {
	out := ComparisonSet("set", []Comparison{
		{Label: "a", Paper: 10, Measured: 11, Unit: "ns"},
		{Label: "b", Paper: 10, Measured: 9.5, Unit: "ns"},
	})
	if !strings.Contains(out, "worst deviation: 10.0% over 2 cells") {
		t.Errorf("summary missing: %q", out)
	}
}
