package placement

import (
	"testing"

	"haswellep/internal/addr"
	"haswellep/internal/cache"
	"haswellep/internal/machine"
	"haswellep/internal/mesif"
	"haswellep/internal/topology"
	"haswellep/internal/units"
)

func setup(t *testing.T, mode machine.SnoopMode) (*mesif.Engine, *Placer) {
	t.Helper()
	e := mesif.New(machine.MustNew(machine.TestSystem(mode)))
	return e, New(e)
}

func alloc(t *testing.T, e *mesif.Engine, node int, size int64) addr.Region {
	t.Helper()
	r, err := e.M.AllocOnNode(topology.NodeID(node), size)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestModifiedSmall: a small modified data set lives in the placer's L1.
func TestModifiedSmall(t *testing.T) {
	e, p := setup(t, machine.SourceSnoop)
	r := alloc(t, e, 0, 8*units.KiB)
	p.Modified(1, r)
	for _, l := range r.Lines() {
		lvl, st := e.PrivateState(1, l)
		if lvl != 1 || st != cache.Modified {
			t.Fatalf("line %#x: L%d %v, want L1 M", l, lvl, st)
		}
	}
}

// TestModifiedLarge: beyond the private caches the dirty lines land in the
// L3 with the core-valid bit cleared by the writeback.
func TestModifiedLarge(t *testing.T) {
	e, p := setup(t, machine.SourceSnoop)
	r := alloc(t, e, 0, 2*units.MiB)
	p.Modified(1, r)
	inL3M, clearedBits := 0, 0
	node := e.M.Topo.NodeOfCore(1)
	for _, l := range r.Lines() {
		if lvl, _ := e.PrivateState(1, l); lvl != 0 {
			continue // still private (the tail)
		}
		if st := e.L3StateIn(node, l); st == cache.Modified {
			inL3M++
			if e.CoreValidIn(node, l) == 0 {
				clearedBits++
			}
		}
	}
	if inL3M < 20000 {
		t.Fatalf("only %d lines settled in L3 as M", inL3M)
	}
	if clearedBits != inL3M {
		t.Errorf("%d of %d L3-M lines kept a core-valid bit; writebacks must clear it", inL3M-clearedBits, inL3M)
	}
}

// TestExclusive: write + flush + read leaves clean exclusive lines; beyond
// the private caches the stale core-valid bit remains set.
func TestExclusive(t *testing.T) {
	e, p := setup(t, machine.SourceSnoop)
	r := alloc(t, e, 0, 2*units.MiB)
	p.Exclusive(1, r)
	node := e.M.Topo.NodeOfCore(1)
	staleBits := 0
	for _, l := range r.Lines() {
		st := e.L3StateIn(node, l)
		if st != cache.Exclusive {
			t.Fatalf("line %#x L3 state = %v, want E", l, st)
		}
		if lvl, _ := e.PrivateState(1, l); lvl == 0 && e.CoreValidIn(node, l) != 0 {
			staleBits++
		}
	}
	if staleBits < 20000 {
		t.Errorf("stale core-valid bits on %d lines; silent eviction must leave them", staleBits)
	}
}

// TestShared: exclusive at the first core, then read by the others; the
// forward copy ends with the last reader's node.
func TestShared(t *testing.T) {
	e, p := setup(t, machine.SourceSnoop)
	r := alloc(t, e, 0, 64*units.KiB)
	p.Shared(r, 1, 12) // core 1 (socket 0) places, core 12 (socket 1) reads
	for _, l := range r.Lines() {
		if st := e.L3StateIn(0, l); st != cache.Shared {
			t.Fatalf("socket0 L3 = %v, want S", st)
		}
		if st := e.L3StateIn(1, l); st != cache.Forward {
			t.Fatalf("socket1 L3 = %v, want F (last reader)", st)
		}
	}
}

func TestSharedOrderMatters(t *testing.T) {
	e, p := setup(t, machine.SourceSnoop)
	r := alloc(t, e, 0, 64*units.KiB)
	p.Shared(r, 12, 1) // reversed: F must end on socket 0
	for _, l := range r.Lines() {
		if st := e.L3StateIn(0, l); st != cache.Forward {
			t.Fatalf("socket0 L3 = %v, want F", st)
		}
	}
}

func TestSharedEmptyCores(t *testing.T) {
	e, p := setup(t, machine.SourceSnoop)
	r := alloc(t, e, 0, units.KiB)
	p.Shared(r) // no cores: must be a no-op
	if e.L3StateIn(0, r.Base.Line()) != cache.Invalid {
		t.Error("Shared with no cores placed data")
	}
}

func TestFlushAll(t *testing.T) {
	e, p := setup(t, machine.COD)
	r := alloc(t, e, 0, 64*units.KiB)
	p.Modified(1, r)
	p.FlushAll(1, r)
	for _, l := range r.Lines() {
		if e.L3StateIn(0, l) != cache.Invalid {
			t.Fatal("flush left an L3 copy")
		}
		if lvl, _ := e.PrivateState(1, l); lvl != 0 {
			t.Fatal("flush left a private copy")
		}
	}
}

// TestEvictPrivateDirty: modified private lines move to the L3 (state M,
// bit cleared).
func TestEvictPrivateDirty(t *testing.T) {
	e, p := setup(t, machine.SourceSnoop)
	r := alloc(t, e, 0, 8*units.KiB)
	p.Modified(1, r)
	p.EvictPrivate(1, r)
	node := e.M.Topo.NodeOfCore(1)
	for _, l := range r.Lines() {
		if lvl, _ := e.PrivateState(1, l); lvl != 0 {
			t.Fatal("EvictPrivate left private copies")
		}
		if st := e.L3StateIn(node, l); st != cache.Modified {
			t.Fatalf("L3 state = %v, want M", st)
		}
		if e.CoreValidIn(node, l) != 0 {
			t.Fatal("writeback must clear the core-valid bit")
		}
	}
}

// TestEvictPrivateClean: clean lines vanish silently, leaving the stale
// core-valid bit set.
func TestEvictPrivateClean(t *testing.T) {
	e, p := setup(t, machine.SourceSnoop)
	r := alloc(t, e, 0, 8*units.KiB)
	p.Exclusive(1, r)
	p.EvictPrivate(1, r)
	node := e.M.Topo.NodeOfCore(1)
	for _, l := range r.Lines() {
		if st := e.L3StateIn(node, l); st != cache.Exclusive {
			t.Fatalf("L3 state = %v, want E", st)
		}
		if e.CoreValidIn(node, l) == 0 {
			t.Fatal("silent eviction must leave the core-valid bit")
		}
	}
}

// TestPlacementReproducesPaperStates is the end-to-end check of Section
// V-B's recipes: after each recipe the measured first-access latency class
// matches the paper's expectation.
func TestPlacementReproducesPaperStates(t *testing.T) {
	e, p := setup(t, machine.SourceSnoop)

	// Modified in another core's L1 -> core forward.
	r := alloc(t, e, 0, 8*units.KiB)
	p.Modified(1, r)
	if acc := e.Read(0, r.Base.Line()); acc.Source != mesif.SrcCoreForward {
		t.Errorf("M-in-L1 read = %v, want core-forward", acc.Source)
	}

	// Exclusive placed by another core -> L3 with core snoop.
	e.M.Reset()
	r2 := alloc(t, e, 0, 2*units.MiB)
	p.Exclusive(1, r2)
	probe := r2.Base.Line()
	// Pick a line whose copy has left core 1's private caches.
	for _, l := range r2.Lines() {
		if lvl, _ := e.PrivateState(1, l); lvl == 0 {
			probe = l
			break
		}
	}
	if acc := e.Read(0, probe); acc.Source != mesif.SrcL3CoreSnoop {
		t.Errorf("stale-E read = %v, want L3+core-snoop", acc.Source)
	}
}
