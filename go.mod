module haswellep

go 1.22
