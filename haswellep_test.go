package haswellep_test

import (
	"fmt"
	"math"
	"testing"

	"haswellep"
)

// TestPublicAPIQuickstart exercises the façade end to end: the README's
// quickstart must work exactly as documented.
func TestPublicAPIQuickstart(t *testing.T) {
	m := haswellep.NewTestSystem(haswellep.SourceSnoop)
	e := haswellep.NewEngine(m)
	p := haswellep.NewPlacer(e)

	buf := m.MustAlloc(0, 8*haswellep.MiB)
	p.Exclusive(1, buf)

	stat := haswellep.MeasureLatency(e, 0, buf)
	if math.Abs(stat.MeanNs-44.4) > 2.5 {
		t.Errorf("quickstart latency = %.1f ns, want ~44.4", stat.MeanNs)
	}

	m.Reset()
	p.Exclusive(1, buf)
	bw := haswellep.MeasureReadBandwidth(e, 0, buf)
	if math.Abs(bw.GBps-15.0) > 1.5 {
		t.Errorf("quickstart bandwidth = %.1f GB/s, want ~15", bw.GBps)
	}
}

func TestPublicAPIConfig(t *testing.T) {
	cfg := haswellep.TestSystemConfig(haswellep.COD)
	cfg.HitMEBytes = 28 * haswellep.KiB
	m, err := haswellep.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Topo.Nodes() != 4 {
		t.Errorf("COD nodes = %d", m.Topo.Nodes())
	}
	cfg.Sockets = 0
	if _, err := haswellep.NewMachine(cfg); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestPublicAPIWriteBandwidth(t *testing.T) {
	m := haswellep.NewTestSystem(haswellep.SourceSnoop)
	e := haswellep.NewEngine(m)
	buf := m.MustAlloc(0, 4*haswellep.MiB)
	bw := haswellep.MeasureWriteBandwidth(e, 0, buf)
	if bw.GBps < 6.5 || bw.GBps > 9 {
		t.Errorf("write bandwidth = %.1f GB/s, want ~7.7", bw.GBps)
	}
}

// ExampleMeasureLatency demonstrates the paper's stale-core-valid-bit case
// through the public API.
func ExampleMeasureLatency() {
	m := haswellep.NewTestSystem(haswellep.SourceSnoop)
	e := haswellep.NewEngine(m)
	p := haswellep.NewPlacer(e)

	buf := m.MustAlloc(0, 8*haswellep.MiB)
	p.Exclusive(1, buf) // core 1 caches exclusively, then silently evicts

	stat := haswellep.MeasureLatency(e, 0, buf)
	fmt.Printf("%.0f ns\n", stat.MeanNs)
	// Output: 44 ns
}

// ExampleNewTestSystem shows the three configurations' local memory
// latencies side by side.
func ExampleNewTestSystem() {
	for _, mode := range []haswellep.SnoopMode{
		haswellep.SourceSnoop, haswellep.HomeSnoop, haswellep.COD,
	} {
		m := haswellep.NewTestSystem(mode)
		e := haswellep.NewEngine(m)
		p := haswellep.NewPlacer(e)
		buf := m.MustAlloc(0, 16*haswellep.MiB)
		p.Modified(0, buf)
		e.Flush(0, buf.Base.Line()) // flush one line as a teaser...
		p.FlushAll(0, buf)          // ...then all of them
		fmt.Printf("%.0f ns\n", haswellep.MeasureLatency(e, 0, buf).MeanNs)
	}
	// Output:
	// 96 ns
	// 108 ns
	// 92 ns
}
